#include "generators/barabasi_albert.hpp"

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

BarabasiAlbertGenerator::BarabasiAlbertGenerator(count n, count attachment)
    : n_(n), attachment_(attachment) {
    require(attachment >= 1, "BarabasiAlbert: attachment must be >= 1");
    require(n > attachment, "BarabasiAlbert: n must exceed attachment");
}

Graph BarabasiAlbertGenerator::generate() {
    GraphBuilder builder(n_, false);

    // Seed: a clique on (attachment_ + 1) nodes, so every early node has
    // degree >= attachment_ and sampling is well defined.
    const count seedSize = attachment_ + 1;
    std::vector<node> endpoints;
    endpoints.reserve(2 * n_ * attachment_);
    for (node u = 0; u < seedSize; ++u) {
        for (node v = u + 1; v < seedSize; ++v) {
            builder.addEdge(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }

    std::vector<node> chosen;
    chosen.reserve(attachment_);
    for (node v = static_cast<node>(seedSize); v < n_; ++v) {
        chosen.clear();
        // Sample `attachment_` distinct targets degree-proportionally.
        count guard = 0;
        while (chosen.size() < attachment_) {
            const node target =
                endpoints[Random::integer(endpoints.size())];
            if (std::find(chosen.begin(), chosen.end(), target) ==
                chosen.end()) {
                chosen.push_back(target);
            }
            // Degenerate safety: if fewer distinct candidates exist than
            // attachment_, fall back to uniform choice among earlier nodes.
            if (++guard > 64 * attachment_) {
                const node target2 = static_cast<node>(Random::integer(v));
                if (std::find(chosen.begin(), chosen.end(), target2) ==
                    chosen.end()) {
                    chosen.push_back(target2);
                }
            }
        }
        for (node target : chosen) {
            builder.addEdge(v, target);
            endpoints.push_back(v);
            endpoints.push_back(target);
        }
    }
    return builder.build();
}

} // namespace grapr
