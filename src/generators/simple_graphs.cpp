#include "generators/simple_graphs.hpp"

namespace grapr::SimpleGraphs {

Graph clique(count n) {
    Graph g(n, false);
    for (node u = 0; u < n; ++u) {
        for (node v = u + 1; v < n; ++v) g.addEdge(u, v);
    }
    return g;
}

Graph star(count n) {
    require(n >= 1, "star: n must be >= 1");
    Graph g(n, false);
    for (node v = 1; v < n; ++v) g.addEdge(0, v);
    return g;
}

Graph path(count n) {
    Graph g(n, false);
    for (node v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
    return g;
}

Graph cycle(count n) {
    require(n >= 3, "cycle: n must be >= 3");
    Graph g = path(n);
    g.addEdge(static_cast<node>(n - 1), 0);
    return g;
}

Graph cliqueChain(count cliques, count cliqueSize) {
    require(cliques >= 1 && cliqueSize >= 2, "cliqueChain: invalid shape");
    const count n = cliques * cliqueSize;
    Graph g(n, false);
    for (count c = 0; c < cliques; ++c) {
        const node base = static_cast<node>(c * cliqueSize);
        for (count i = 0; i < cliqueSize; ++i) {
            for (count j = i + 1; j < cliqueSize; ++j) {
                g.addEdge(base + static_cast<node>(i),
                          base + static_cast<node>(j));
            }
        }
        if (c + 1 < cliques) {
            // Bridge: last node of this clique to first node of the next.
            g.addEdge(base + static_cast<node>(cliqueSize - 1),
                      base + static_cast<node>(cliqueSize));
        }
    }
    return g;
}

Partition cliqueChainTruth(count cliques, count cliqueSize) {
    Partition truth(cliques * cliqueSize);
    for (node v = 0; v < truth.numberOfElements(); ++v) {
        truth.set(v, static_cast<node>(v / cliqueSize));
    }
    truth.setUpperBound(static_cast<node>(cliques));
    return truth;
}

Graph karateClub() {
    // Zachary (1977), 0-based edge list.
    static const std::pair<node, node> edges[] = {
        {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
        {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
        {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
        {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
        {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
        {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
        {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
        {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
        {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
        {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
        {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
        {32, 33}};
    Graph g(34, false);
    for (auto [u, v] : edges) g.addEdge(u, v);
    return g;
}

Partition karateFactions() {
    // The administrator/instructor split observed by Zachary.
    static const node faction[34] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0,
                                     0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1,
                                     1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    Partition p(34);
    for (node v = 0; v < 34; ++v) p.set(v, faction[v]);
    p.setUpperBound(2);
    return p;
}

} // namespace grapr::SimpleGraphs
