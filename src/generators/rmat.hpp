#pragma once
// R-MAT / stochastic Kronecker generator (Chakrabarti–Zhan–Faloutsos).
// Produces the scale-free, small-world graphs of the Graph500 family; the
// paper uses R-MAT instances both as kron_g500-simple-logn20 (Table I) and
// for the weak-scaling series with parameters (a,b,c,d) =
// (0.57, 0.19, 0.19, 0.05) and edge factor 48 (§V-I).
//
// Each of n·edgeFactor directed edge samples recursively descends the
// 2^scale × 2^scale adjacency matrix; duplicates and orientation are then
// removed so the result is a simple undirected graph ("-simple" in Graph500
// terms). Loops are discarded.

#include "generators/generator.hpp"

namespace grapr {

class RmatGenerator final : public GraphGenerator {
public:
    /// n = 2^scale nodes, about n·edgeFactor sampled edges (fewer after
    /// dedup). Probabilities must sum to 1.
    RmatGenerator(count scale, count edgeFactor, double a = 0.57,
                  double b = 0.19, double c = 0.19, double d = 0.05);

    Graph generate() override;

private:
    count scale_;
    count edgeFactor_;
    double a_, b_, c_, d_;
};

} // namespace grapr
