#pragma once
// Power-law degree sequence sampling with feasibility fix-ups, shared by
// the configuration model and the LFR generator.

#include <vector>

#include "support/common.hpp"

namespace grapr {

/// Draw n degrees from P(k) ∝ k^-gamma on [minDegree, maxDegree] and adjust
/// the final entry so the total is even (a graphical necessity for the
/// configuration model).
std::vector<count> powerLawDegreeSequence(count n, count minDegree,
                                          count maxDegree, double gamma);

/// Draw community sizes from P(s) ∝ s^-gamma on [minSize, maxSize] until
/// they cover exactly `n` nodes; the last community is clamped into range
/// by merging/trimming. Returns the sizes (sum == n).
std::vector<count> powerLawCommunitySizes(count n, count minSize,
                                          count maxSize, double gamma);

/// Erdős–Gallai check: is the sequence graphical (realizable as a simple
/// graph)? O(n log n).
bool isGraphicalSequence(std::vector<count> degrees);

} // namespace grapr
