#include "generators/degree_sequence.hpp"

#include <algorithm>
#include <numeric>

#include "support/random.hpp"

namespace grapr {

std::vector<count> powerLawDegreeSequence(count n, count minDegree,
                                          count maxDegree, double gamma) {
    require(minDegree >= 1, "degree sequence: minDegree must be >= 1");
    require(maxDegree < n, "degree sequence: maxDegree must be < n");
    PowerLawSampler sampler(minDegree, maxDegree, gamma);
    std::vector<count> degrees(n);
    for (auto& d : degrees) d = sampler.sample();
    // Parity fix: the configuration model needs an even number of stubs.
    const count total = std::accumulate(degrees.begin(), degrees.end(), count{0});
    if (total % 2 != 0) {
        // Bump a non-maximal entry (always exists unless all are at max, in
        // which case drop one instead).
        for (auto& d : degrees) {
            if (d < maxDegree) {
                ++d;
                return degrees;
            }
        }
        --degrees.front();
    }
    return degrees;
}

std::vector<count> powerLawCommunitySizes(count n, count minSize,
                                          count maxSize, double gamma) {
    require(minSize >= 1 && maxSize >= minSize,
            "community sizes: invalid bounds");
    require(maxSize <= n, "community sizes: maxSize must be <= n");
    PowerLawSampler sampler(minSize, maxSize, gamma);
    std::vector<count> sizes;
    count covered = 0;
    while (covered < n) {
        count s = sampler.sample();
        if (covered + s > n) {
            // Remainder too small for a fresh community: fold it into
            // existing ones if it cannot stand alone.
            const count remainder = n - covered;
            if (remainder >= minSize) {
                s = remainder;
            } else if (!sizes.empty()) {
                // Distribute the remainder over previous communities,
                // respecting maxSize.
                count leftover = remainder;
                for (auto& existing : sizes) {
                    while (leftover > 0 && existing < maxSize) {
                        ++existing;
                        --leftover;
                    }
                    if (leftover == 0) break;
                }
                if (leftover > 0) sizes.back() += leftover; // tolerate > max
                break;
            } else {
                s = remainder; // single community smaller than minSize
            }
        }
        sizes.push_back(s);
        covered += s;
    }
    return sizes;
}

bool isGraphicalSequence(std::vector<count> degrees) {
    std::sort(degrees.begin(), degrees.end(), std::greater<>());
    const count n = degrees.size();
    count total = std::accumulate(degrees.begin(), degrees.end(), count{0});
    if (total % 2 != 0) return false;

    // Erdős–Gallai: for each k, sum of k largest <= k(k-1) + sum of
    // min(d_i, k) over the rest.
    std::vector<count> prefix(n + 1, 0);
    for (count i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + degrees[i];
    for (count k = 1; k <= n; ++k) {
        const count lhs = prefix[k];
        count rhs = k * (k - 1);
        // Sum over i > k of min(d_i, k): degrees sorted descending, so find
        // the first index >= k where d_i < k via binary search.
        const auto firstSmaller = std::lower_bound(
            degrees.begin() + static_cast<std::ptrdiff_t>(k), degrees.end(), k,
            [](count d, count bound) { return d >= bound; });
        const count numAtLeastK = static_cast<count>(
            firstSmaller - (degrees.begin() + static_cast<std::ptrdiff_t>(k)));
        rhs += numAtLeastK * k;
        rhs += prefix[n] - prefix[k + numAtLeastK];
        if (lhs > rhs) return false;
    }
    return true;
}

} // namespace grapr
