#pragma once
// Holme–Kim clustered scale-free generator: Barabási–Albert preferential
// attachment with a triad-formation step — after each preferential link
// to node w, with probability `triadProbability` the next link goes to a
// random neighbor of w, closing a triangle. Produces the combination real
// social networks show and plain BA lacks: power-law degrees AND a high
// clustering coefficient (Table I's coAuthors/coPapers signature).

#include "generators/generator.hpp"

namespace grapr {

class HolmeKimGenerator final : public GraphGenerator {
public:
    /// n nodes, `attachment` links per new node, triad-formation
    /// probability in [0, 1] (0 reduces to Barabási–Albert).
    HolmeKimGenerator(count n, count attachment, double triadProbability);

    Graph generate() override;

private:
    count n_;
    count attachment_;
    double triadProbability_;
};

} // namespace grapr
