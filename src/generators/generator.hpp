#pragma once
// Common interface for graph generators. Every generator is deterministic
// given Random::setSeed(...) and a fixed thread count.

#include "graph/graph.hpp"

namespace grapr {

class GraphGenerator {
public:
    virtual ~GraphGenerator() = default;

    /// Generate one graph instance.
    virtual Graph generate() = 0;
};

} // namespace grapr
