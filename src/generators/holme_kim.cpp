#include "generators/holme_kim.hpp"

#include <algorithm>

#include "support/random.hpp"

namespace grapr {

HolmeKimGenerator::HolmeKimGenerator(count n, count attachment,
                                     double triadProbability)
    : n_(n), attachment_(attachment), triadProbability_(triadProbability) {
    require(attachment >= 1, "HolmeKim: attachment must be >= 1");
    require(n > attachment, "HolmeKim: n must exceed attachment");
    require(triadProbability >= 0.0 && triadProbability <= 1.0,
            "HolmeKim: triad probability in [0,1]");
}

Graph HolmeKimGenerator::generate() {
    Graph g(n_, false);
    // Seed clique as in the BA generator.
    const count seedSize = attachment_ + 1;
    std::vector<node> endpoints; // degree-proportional sampling list
    endpoints.reserve(2 * n_ * attachment_);
    for (node u = 0; u < seedSize; ++u) {
        for (node v = u + 1; v < seedSize; ++v) {
            g.addEdge(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }

    for (node v = static_cast<node>(seedSize); v < n_; ++v) {
        node lastTarget = none;
        count added = 0;
        count guard = 0;
        while (added < attachment_ && guard < 64 * attachment_) {
            ++guard;
            node target = none;
            if (lastTarget != none && Random::chance(triadProbability_)) {
                // Triad formation: a random neighbor of the previous
                // preferential target.
                const count d = g.degree(lastTarget);
                if (d > 0) {
                    target = g.getIthNeighbor(lastTarget,
                                              Random::integer(d));
                }
            }
            if (target == none) {
                // Preferential attachment step.
                target = endpoints[Random::integer(endpoints.size())];
            }
            if (target == v || g.hasEdge(v, target)) continue;
            g.addEdge(v, target);
            endpoints.push_back(v);
            endpoints.push_back(target);
            lastTarget = target;
            ++added;
        }
    }
    return g;
}

} // namespace grapr
