#include "generators/rmat.hpp"

#include <cmath>

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

RmatGenerator::RmatGenerator(count scale, count edgeFactor, double a, double b,
                             double c, double d)
    : scale_(scale), edgeFactor_(edgeFactor), a_(a), b_(b), c_(c), d_(d) {
    require(scale >= 1 && scale <= 31, "Rmat: scale must be in [1,31]");
    require(std::abs(a + b + c + d - 1.0) < 1e-9,
            "Rmat: probabilities must sum to 1");
}

Graph RmatGenerator::generate() {
    const count n = count{1} << scale_;
    const count samples = n * edgeFactor_;
    GraphBuilder builder(n, false);

    const double ab = a_ + b_;
    const double abc = a_ + b_ + c_;

    const auto total = static_cast<std::int64_t>(samples);
#pragma omp parallel for default(none) shared(builder, total, ab, abc)       \
    schedule(static)
    for (std::int64_t s = 0; s < total; ++s) {
        // Per-sample counter stream: sample s reads only (seed, s), so the
        // edge multiset is identical for any thread count and schedule.
        SplitMix64 rng = Random::forStream(static_cast<std::uint64_t>(s));
        node u = 0, v = 0;
        for (count level = 0; level < scale_; ++level) {
            const double r = Random::real(rng);
            u <<= 1;
            v <<= 1;
            if (r < a_) {
                // top-left quadrant: no bits set
            } else if (r < ab) {
                v |= 1; // top-right
            } else if (r < abc) {
                u |= 1; // bottom-left
            } else {
                u |= 1; // bottom-right
                v |= 1;
            }
        }
        if (u != v) builder.addEdge(u, v); // "-simple": drop loops
    }
    // Dedup collapses duplicate samples and the two orientations of each
    // undirected edge.
    return builder.build(/*dedup=*/true);
}

} // namespace grapr
