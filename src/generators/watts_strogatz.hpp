#pragma once
// Watts–Strogatz small-world generator: a ring lattice where every node
// connects to its k nearest neighbors, each edge rewired to a random target
// with probability beta. With small beta this yields the high-clustering /
// long-path regime; the replica suite uses it (beta ≈ 0) as a proxy for
// mesh-like networks (power grid, street networks).

#include "generators/generator.hpp"

namespace grapr {

class WattsStrogatzGenerator final : public GraphGenerator {
public:
    /// n nodes, k/2 lattice neighbors per side (k must be even and < n),
    /// rewiring probability beta.
    WattsStrogatzGenerator(count n, count k, double beta);

    Graph generate() override;

private:
    count n_;
    count k_;
    double beta_;
};

} // namespace grapr
