#pragma once
// Configuration-model graph from a prescribed degree sequence: create
// deg(v) stubs per node, shuffle, pair consecutive stubs, then erase
// self-loops and parallel edges (the "erased configuration model", which
// perturbs the degree sequence slightly but keeps the graph simple — the
// standard approach inside LFR).

#include <vector>

#include "generators/generator.hpp"

namespace grapr {

class ConfigurationModelGenerator final : public GraphGenerator {
public:
    explicit ConfigurationModelGenerator(std::vector<count> degrees);

    Graph generate() override;

private:
    std::vector<count> degrees_;
};

} // namespace grapr
