#include "generators/watts_strogatz.hpp"

#include "support/random.hpp"

namespace grapr {

WattsStrogatzGenerator::WattsStrogatzGenerator(count n, count k, double beta)
    : n_(n), k_(k), beta_(beta) {
    require(k >= 2 && k % 2 == 0, "WattsStrogatz: k must be even and >= 2");
    require(k < n, "WattsStrogatz: k must be < n");
    require(beta >= 0.0 && beta <= 1.0, "WattsStrogatz: beta in [0,1]");
}

Graph WattsStrogatzGenerator::generate() {
    Graph g(n_, false);
    // Ring lattice: node v connects to v+1 .. v+k/2 (mod n).
    for (node v = 0; v < n_; ++v) {
        for (count j = 1; j <= k_ / 2; ++j) {
            const node u = static_cast<node>((v + j) % n_);
            g.addEdge(v, u);
        }
    }
    if (beta_ <= 0.0) return g;

    // Rewiring pass: sequential because hasEdge checks must observe prior
    // rewires. For each lattice edge (v, v+j), with probability beta replace
    // it by (v, random) avoiding loops and duplicates.
    for (node v = 0; v < n_; ++v) {
        for (count j = 1; j <= k_ / 2; ++j) {
            if (!Random::chance(beta_)) continue;
            const node oldTarget = static_cast<node>((v + j) % n_);
            if (!g.hasEdge(v, oldTarget)) continue; // already rewired away
            // Draw a replacement; bounded retries keep this O(1) expected
            // for sparse graphs.
            for (int attempt = 0; attempt < 32; ++attempt) {
                const node t = static_cast<node>(Random::integer(n_));
                if (t == v || g.hasEdge(v, t)) continue;
                g.removeEdge(v, oldTarget);
                g.addEdge(v, t);
                break;
            }
        }
    }
    return g;
}

} // namespace grapr
