#include "generators/planted_partition.hpp"

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

PlantedPartitionGenerator::PlantedPartitionGenerator(count n, count groups,
                                                     double pIn, double pOut)
    : n_(n), groups_(groups), pIn_(pIn), pOut_(pOut) {
    require(groups >= 1, "PlantedPartition: need at least one group");
    require(pIn >= 0.0 && pIn <= 1.0 && pOut >= 0.0 && pOut <= 1.0,
            "PlantedPartition: probabilities must be in [0,1]");
}

Graph PlantedPartitionGenerator::generate() {
    // Groups are contiguous blocks of ceil(n/k) nodes, so both the
    // intra-group and the cross-group candidate ranges of any node are
    // contiguous and geometric skipping applies to each.
    const count blockSize = (n_ + groups_ - 1) / groups_;
    truth_ = Partition(n_);
    for (node v = 0; v < n_; ++v) {
        truth_.set(v, static_cast<node>(v / blockSize));
    }
    truth_.setUpperBound(static_cast<node>((n_ + blockSize - 1) / blockSize));

    GraphBuilder builder(n_, false);
    const auto rows = static_cast<std::int64_t>(n_);
#pragma omp parallel for default(none) shared(builder, rows, blockSize)      \
    schedule(dynamic, 512)
    for (std::int64_t sv = 0; sv < rows; ++sv) {
        const node v = static_cast<node>(sv);
        // Per-row counter stream: output depends only on (seed, v), not on
        // the thread count or schedule.
        SplitMix64 rng = Random::forStream(static_cast<std::uint64_t>(v));
        const count groupEnd = std::min<count>(
            (static_cast<count>(v) / blockSize + 1) * blockSize, n_);

        auto sampleRange = [&](count lo, count hi, double p) {
            if (p <= 0.0) return;
            count u = lo;
            while (u < hi) {
                const count skip = Random::geometricSkip(rng, p);
                if (skip >= hi - u) break;
                u += skip;
                builder.addEdge(v, static_cast<node>(u));
                ++u;
            }
        };

        sampleRange(v + 1, groupEnd, pIn_); // intra-group, upper triangle
        sampleRange(groupEnd, n_, pOut_);   // cross-group
    }
    return builder.build();
}

} // namespace grapr
