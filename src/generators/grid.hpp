#pragma once
// Two-dimensional grid (optionally with a fraction of random chords).
// Proxy for the paper's low-degree, high-diameter instances: the power grid
// (n≈5k, max degree 19) and europe-osm street network (avg degree ≈ 2,
// LCC ≈ 0.001). These stress community detection differently from complex
// networks: no hubs, no small-world shortcuts, and very deep coarsening
// hierarchies.

#include "generators/generator.hpp"

namespace grapr {

class GridGenerator final : public GraphGenerator {
public:
    /// rows × columns lattice; `diagonalChance` adds the (r,c)-(r+1,c+1)
    /// diagonal with that probability (gives degree variation like real
    /// infrastructure nets); `chordChance` attaches a uniformly random
    /// long-range chord per node with that probability.
    GridGenerator(count rows, count columns, double diagonalChance = 0.0,
                  double chordChance = 0.0);

    Graph generate() override;

private:
    count rows_;
    count columns_;
    double diagonalChance_;
    double chordChance_;
};

} // namespace grapr
