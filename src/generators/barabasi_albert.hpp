#pragma once
// Barabási–Albert preferential attachment. Grows a graph one node at a
// time, attaching each new node to `attachment` existing nodes with
// probability proportional to their degree. Used by the replica suite as a
// proxy for the paper's internet-topology networks (as-22july06,
// caidaRouterLevel, as-Skitter), whose defining property — a handful of
// very high degree hubs among many low-degree nodes — is exactly what
// preferential attachment produces.
//
// Implementation: the classic "repeated nodes" trick — maintain a list in
// which every node appears once per incident edge endpoint; sampling a
// uniform list element is degree-proportional sampling. Inherently
// sequential (each step depends on the previous), but fast: O(m) total.

#include "generators/generator.hpp"

namespace grapr {

class BarabasiAlbertGenerator final : public GraphGenerator {
public:
    /// n nodes total, starting from a small seed clique; each new node
    /// attaches `attachment` edges.
    BarabasiAlbertGenerator(count n, count attachment);

    Graph generate() override;

private:
    count n_;
    count attachment_;
};

} // namespace grapr
