#include "generators/configuration_model.hpp"

#include <numeric>

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

ConfigurationModelGenerator::ConfigurationModelGenerator(
    std::vector<count> degrees)
    : degrees_(std::move(degrees)) {
    const count total =
        std::accumulate(degrees_.begin(), degrees_.end(), count{0});
    require(total % 2 == 0,
            "ConfigurationModel: degree sum must be even");
}

Graph ConfigurationModelGenerator::generate() {
    const count n = degrees_.size();
    std::vector<node> stubs;
    count total = 0;
    for (count d : degrees_) total += d;
    stubs.reserve(total);
    for (node v = 0; v < n; ++v) {
        for (count i = 0; i < degrees_[v]; ++i) stubs.push_back(v);
    }
    Random::shuffle(stubs.begin(), stubs.end());

    GraphBuilder builder(n, false);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        const node u = stubs[i];
        const node v = stubs[i + 1];
        if (u == v) continue; // erased model: drop loops
        builder.addEdge(u, v);
    }
    return builder.build(/*dedup=*/true); // erase parallel edges
}

} // namespace grapr
