#include "generators/lfr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "generators/degree_sequence.hpp"
#include "graph/graph_builder.hpp"
#include "support/logging.hpp"
#include "support/random.hpp"

namespace grapr {

LfrGenerator::LfrGenerator(LfrParameters params) : params_(params) {
    require(params_.n >= 2, "LFR: n too small");
    require(params_.mu >= 0.0 && params_.mu <= 1.0, "LFR: mu in [0,1]");
    require(params_.minDegree >= 1 && params_.maxDegree < params_.n,
            "LFR: degree bounds invalid");
    require(params_.minCommunitySize <= params_.maxCommunitySize &&
                params_.maxCommunitySize <= params_.n,
            "LFR: community size bounds invalid");
}

Graph LfrGenerator::generate() {
    const count n = params_.n;

    // 1. Degree sequence and its split into internal/external parts.
    std::vector<count> degree = powerLawDegreeSequence(
        n, params_.minDegree, params_.maxDegree, params_.degreeExponent);
    std::vector<count> internalDegree(n);
    for (node v = 0; v < n; ++v) {
        internalDegree[v] = static_cast<count>(
            std::llround((1.0 - params_.mu) * static_cast<double>(degree[v])));
        internalDegree[v] = std::min(internalDegree[v], degree[v]);
    }

    // 2. Community sizes and node-to-community assignment. A node fits a
    // community only if its internal degree is < community size; nodes are
    // offered to random communities with free capacity, largest-internal-
    // degree first so the hardest nodes get first pick.
    std::vector<count> sizes = powerLawCommunitySizes(
        n, params_.minCommunitySize, params_.maxCommunitySize,
        params_.communityExponent);
    const count k = sizes.size();

    std::vector<node> order(n);
    std::iota(order.begin(), order.end(), node{0});
    std::sort(order.begin(), order.end(), [&](node a, node b) {
        return internalDegree[a] > internalDegree[b];
    });

    truth_ = Partition(n);
    truth_.setUpperBound(static_cast<node>(k));
    std::vector<count> capacity = sizes;
    std::vector<node> openCommunities(k);
    std::iota(openCommunities.begin(), openCommunities.end(), node{0});

    for (node v : order) {
        bool placed = false;
        // Try a handful of random open communities first.
        for (int attempt = 0; attempt < 32 && !openCommunities.empty();
             ++attempt) {
            const index pick = Random::integer(openCommunities.size());
            const node c = openCommunities[pick];
            if (capacity[c] > 0 && internalDegree[v] < sizes[c]) {
                truth_.set(v, c);
                if (--capacity[c] == 0) {
                    openCommunities[pick] = openCommunities.back();
                    openCommunities.pop_back();
                }
                placed = true;
                break;
            }
        }
        if (!placed) {
            // Deterministic fallback: first open community; cap the internal
            // degree to keep the node feasible (the reference implementation
            // reassigns in a loop; capping converges and changes the degree
            // of only a few extreme nodes).
            node best = none;
            for (index i = 0; i < openCommunities.size(); ++i) {
                const node c = openCommunities[i];
                if (capacity[c] == 0) continue;
                if (best == none || sizes[c] > sizes[best]) best = c;
            }
            require(best != none, "LFR: no community with free capacity");
            truth_.set(v, best);
            internalDegree[v] = std::min<count>(internalDegree[v],
                                                sizes[best] - 1);
            if (--capacity[best] == 0) {
                openCommunities.erase(std::find(openCommunities.begin(),
                                                openCommunities.end(), best));
            }
        }
    }

    // 3. Internal subgraphs: per community an erased configuration model
    // over the members' internal stubs.
    std::vector<std::vector<node>> members(k);
    for (node v = 0; v < n; ++v) members[truth_[v]].push_back(v);

    GraphBuilder builder(n, false);
    std::vector<node> stubs;
    for (count c = 0; c < k; ++c) {
        stubs.clear();
        for (node v : members[c]) {
            count d = internalDegree[v];
            // A node cannot have more internal partners than the community
            // offers.
            d = std::min<count>(d, members[c].size() - 1);
            for (count i = 0; i < d; ++i) stubs.push_back(v);
        }
        if (stubs.size() % 2 != 0) stubs.pop_back();
        Random::shuffle(stubs.begin(), stubs.end());
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            if (stubs[i] == stubs[i + 1]) continue;
            builder.addEdge(stubs[i], stubs[i + 1]);
        }
    }

    // 4. External background graph over the remaining stubs, with rewiring
    // of pairs that fall inside one community.
    std::vector<node> external;
    for (node v = 0; v < n; ++v) {
        const count d = degree[v] - std::min(internalDegree[v], degree[v]);
        for (count i = 0; i < d; ++i) external.push_back(v);
    }
    if (external.size() % 2 != 0) external.pop_back();

    std::vector<node> retry;
    constexpr int kRewirePasses = 8;
    for (int pass = 0; pass < kRewirePasses && external.size() >= 2; ++pass) {
        Random::shuffle(external.begin(), external.end());
        retry.clear();
        for (std::size_t i = 0; i + 1 < external.size(); i += 2) {
            const node u = external[i];
            const node v = external[i + 1];
            if (u == v || truth_[u] == truth_[v]) {
                retry.push_back(u);
                retry.push_back(v);
            } else {
                builder.addEdge(u, v);
            }
        }
        external.swap(retry);
    }
    if (!external.empty()) {
        logDebug("LFR: dropped ", external.size(),
                 " unmatchable external stubs");
    }

    Graph g = builder.build(/*dedup=*/true);

    // Realized mixing parameter (over the simple graph).
    count cross = 0;
    g.forEdges([&](node u, node v, edgeweight) {
        if (truth_[u] != truth_[v]) ++cross;
    });
    realizedMu_ = g.numberOfEdges() == 0
                      ? 0.0
                      : static_cast<double>(cross) /
                            static_cast<double>(g.numberOfEdges());
    return g;
}

} // namespace grapr
