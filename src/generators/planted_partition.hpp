#pragma once
// Planted-partition generator G(n, p_in, p_out): n nodes in k equally sized
// groups, edge probability p_in inside a group and p_out across groups.
// This is the model behind the paper's synthetic instance G_n_pin_pout
// (Table I). Ground truth is returned for accuracy experiments.

#include "generators/generator.hpp"
#include "structures/partition.hpp"

namespace grapr {

class PlantedPartitionGenerator final : public GraphGenerator {
public:
    PlantedPartitionGenerator(count n, count groups, double pIn, double pOut);

    Graph generate() override;

    /// Ground-truth communities of the last generate() call.
    const Partition& groundTruth() const noexcept { return truth_; }

private:
    count n_;
    count groups_;
    double pIn_;
    double pOut_;
    Partition truth_;
};

} // namespace grapr
