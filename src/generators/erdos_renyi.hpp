#pragma once
// Erdős–Rényi G(n, p) generator in expected O(n + m) time via geometric
// edge skipping (Batagelj–Brandes): instead of flipping a coin per node
// pair, jump directly to the next present edge. Parallelized over row
// ranges of the upper triangle.

#include "generators/generator.hpp"

namespace grapr {

class ErdosRenyiGenerator final : public GraphGenerator {
public:
    /// G(n, p); `selfLoops` adds each loop {v,v} with the same probability.
    ErdosRenyiGenerator(count n, double p, bool selfLoops = false);

    Graph generate() override;

private:
    count n_;
    double p_;
    bool selfLoops_;
};

} // namespace grapr
