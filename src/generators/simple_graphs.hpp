#pragma once
// Small deterministic graphs for tests and documentation: cliques, stars,
// paths, cycles, the classic "two cliques and a bridge" community
// detection smoke test, and a clustered caveman-style graph with known
// optimal structure.

#include <vector>

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr::SimpleGraphs {

/// Complete graph K_n.
Graph clique(count n);

/// Star S_n: node 0 is the hub, n-1 leaves.
Graph star(count n);

/// Path P_n (n nodes, n-1 edges).
Graph path(count n);

/// Cycle C_n.
Graph cycle(count n);

/// `cliques` cliques of `cliqueSize` nodes each, consecutive cliques joined
/// by one bridge edge. The planted partition (one community per clique) is
/// the modularity optimum for reasonable parameters — the canonical
/// community detection smoke test.
Graph cliqueChain(count cliques, count cliqueSize);

/// Ground-truth partition matching cliqueChain's construction.
Partition cliqueChainTruth(count cliques, count cliqueSize);

/// The Zachary karate club graph (34 nodes, 78 edges) — the standard tiny
/// real-world benchmark; its known two-faction split is returned by
/// karateFactions().
Graph karateClub();
Partition karateFactions();

} // namespace grapr::SimpleGraphs
