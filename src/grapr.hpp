#pragma once
// grapr — umbrella header: the full public API of the parallel community
// detection framework.
//
//   #include <grapr.hpp>
//   grapr::Random::setSeed(1);
//   grapr::Graph g = grapr::RmatGenerator(18, 16).generate();
//   grapr::Plm plm;
//   grapr::Partition communities = plm.run(g);
//   double q = grapr::Modularity().getQuality(communities, g);

#include "support/checksum.hpp"
#include "support/common.hpp"
#include "support/fault.hpp"
#include "support/logging.hpp"
#include "support/parallel.hpp"
#include "support/progress.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

#include "graph/graph.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"
#include "graph/distances.hpp"
#include "graph/graph_tools.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "graph/wal.hpp"

#include "structures/partition.hpp"
#include "structures/delta_csr.hpp"
#include "structures/cover.hpp"
#include "structures/union_find.hpp"

#include "io/binary_csr.hpp"
#include "io/binary_io.hpp"
#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "io/parallel_edgelist.hpp"
#include "io/parallel_metis.hpp"
#include "io/parse_options.hpp"
#include "io/dot_writer.hpp"
#include "io/gml_io.hpp"
#include "io/edgelist_io.hpp"
#include "io/metis_io.hpp"
#include "io/partition_io.hpp"

#include "generators/barabasi_albert.hpp"
#include "generators/configuration_model.hpp"
#include "generators/degree_sequence.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/generator.hpp"
#include "generators/grid.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/rmat.hpp"
#include "generators/holme_kim.hpp"
#include "generators/simple_graphs.hpp"
#include "generators/watts_strogatz.hpp"

#include "quality/clustering_coefficient.hpp"
#include "quality/community_stats.hpp"
#include "quality/conductance.hpp"
#include "quality/core_decomposition.hpp"
#include "quality/connected_components.hpp"
#include "quality/coverage.hpp"
#include "quality/graph_stats.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"

#include "community/combiner.hpp"
#include "community/detector.hpp"
#include "community/dynamic_plm.hpp"
#include "community/dynamic_plp.hpp"
#include "community/local_expansion.hpp"
#include "community/overlapping_lpa.hpp"
#include "community/epp.hpp"
#include "community/plm.hpp"
#include "community/plmr.hpp"
#include "community/plp.hpp"
#include "community/streaming_update.hpp"

#include "baselines/cggc.hpp"
#include "baselines/clu_matching.hpp"
#include "baselines/label_prop_seq.hpp"
#include "baselines/louvain_seq.hpp"
#include "baselines/registry.hpp"
#include "baselines/rg.hpp"
