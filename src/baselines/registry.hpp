#pragma once
// Central registry of all community detection algorithms — ours and the
// competitor stand-ins — keyed by the names used throughout the paper's
// evaluation. Benchmark harnesses and examples construct algorithms
// through this single point so every experiment agrees on configurations.

#include <memory>
#include <string>
#include <vector>

#include "community/detector.hpp"

namespace grapr {

/// Construct a detector by paper name. Known names:
///   "PLP", "PLM", "PLMR",
///   "EPP(4,PLP,PLM)", "EPP(4,PLP,PLMR)",
///   "Louvain", "LabelPropagation",
///   "RG", "CGGC", "CGGCi", "CLU_TBB", "CEL"
/// Throws on unknown names.
std::unique_ptr<CommunityDetector> makeDetector(const std::string& name);

/// All registered names, in the order used by the comparison figures.
std::vector<std::string> detectorNames();

/// The subset of names belonging to this paper's own algorithms.
std::vector<std::string> ourDetectorNames();

/// The subset of competitor stand-ins (§V-E).
std::vector<std::string> competitorDetectorNames();

} // namespace grapr
