#include "baselines/registry.hpp"

#include "baselines/cggc.hpp"
#include "baselines/clu_matching.hpp"
#include "baselines/label_prop_seq.hpp"
#include "baselines/louvain_seq.hpp"
#include "baselines/rg.hpp"
#include "community/epp.hpp"
#include "community/plm.hpp"
#include "community/plmr.hpp"
#include "community/plp.hpp"

namespace grapr {

namespace {

DetectorMaker plpMaker() {
    return []() -> std::unique_ptr<CommunityDetector> {
        return std::make_unique<Plp>();
    };
}

DetectorMaker plmMaker() {
    return []() -> std::unique_ptr<CommunityDetector> {
        return std::make_unique<Plm>();
    };
}

DetectorMaker plmrMaker() {
    return []() -> std::unique_ptr<CommunityDetector> {
        return std::make_unique<Plmr>();
    };
}

} // namespace

std::unique_ptr<CommunityDetector> makeDetector(const std::string& name) {
    // Generic ensemble spelling "EPP(b,Base,Final)" for arbitrary b and
    // registered base/final algorithms (the two configurations the paper
    // evaluates are matched below before this parser runs).
    if (name != "EPP(4,PLP,PLM)" && name != "EPP(4,PLP,PLMR)" &&
        name.rfind("EPP(", 0) == 0 && name.back() == ')') {
        const std::string inner = name.substr(4, name.size() - 5);
        const auto firstComma = inner.find(',');
        const auto secondComma = inner.find(',', firstComma + 1);
        require(firstComma != std::string::npos &&
                    secondComma != std::string::npos,
                "makeDetector: EPP spelling is EPP(b,Base,Final)");
        const count b = std::stoull(inner.substr(0, firstComma));
        const std::string baseName =
            inner.substr(firstComma + 1, secondComma - firstComma - 1);
        const std::string finalName = inner.substr(secondComma + 1);
        auto makeByName = [](const std::string& algorithmName) -> DetectorMaker {
            (void)makeDetector(algorithmName); // validate eagerly: throws
            return [algorithmName] { return makeDetector(algorithmName); };
        };
        return std::make_unique<Epp>(b, makeByName(baseName),
                                     makeByName(finalName), name);
    }
    if (name == "PLP") return std::make_unique<Plp>();
    if (name == "PLM") return std::make_unique<Plm>();
    if (name == "PLMR") return std::make_unique<Plmr>();
    if (name == "EPP(4,PLP,PLM)") {
        return std::make_unique<Epp>(4, plpMaker(), plmMaker(),
                                     "EPP(4,PLP,PLM)");
    }
    if (name == "EPP(4,PLP,PLMR)") {
        return std::make_unique<Epp>(4, plpMaker(), plmrMaker(),
                                     "EPP(4,PLP,PLMR)");
    }
    if (name == "Louvain") return std::make_unique<LouvainSeq>();
    if (name == "LabelPropagation") return std::make_unique<LabelPropSeq>();
    if (name == "RG") return std::make_unique<RandomizedGreedy>();
    if (name == "CGGC") return std::make_unique<Cggc>();
    if (name == "CGGCi") return std::make_unique<CggcIterated>();
    if (name == "CLU_TBB") {
        return std::make_unique<MatchingAgglomeration>(
            /*starAdaptation=*/true);
    }
    if (name == "CEL") {
        return std::make_unique<MatchingAgglomeration>(
            /*starAdaptation=*/false);
    }
    fail("makeDetector: unknown algorithm '" + name + "'");
}

std::vector<std::string> detectorNames() {
    return {"PLP",   "PLM",    "PLMR",  "EPP(4,PLP,PLM)", "EPP(4,PLP,PLMR)",
            "Louvain", "LabelPropagation", "RG", "CGGC", "CGGCi",
            "CLU_TBB", "CEL"};
}

std::vector<std::string> ourDetectorNames() {
    return {"PLP", "PLM", "PLMR", "EPP(4,PLP,PLM)", "EPP(4,PLP,PLMR)"};
}

std::vector<std::string> competitorDetectorNames() {
    return {"Louvain", "RG", "CGGC", "CGGCi", "CLU_TBB", "CEL"};
}

} // namespace grapr
