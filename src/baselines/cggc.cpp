#include "baselines/cggc.hpp"

#include "baselines/rg.hpp"
#include "community/epp.hpp"

namespace grapr {

namespace {

DetectorMaker rgMaker(double gamma) {
    return [gamma]() -> std::unique_ptr<CommunityDetector> {
        return std::make_unique<RandomizedGreedy>(gamma);
    };
}

} // namespace

Cggc::Cggc(count ensembleSize, double gamma)
    : ensembleSize_(ensembleSize), gamma_(gamma) {}

Partition Cggc::run(const Graph& g) {
    Epp scheme(ensembleSize_, rgMaker(gamma_), rgMaker(gamma_), "CGGC");
    return scheme.run(g);
}

CggcIterated::CggcIterated(count ensembleSize, double gamma)
    : ensembleSize_(ensembleSize), gamma_(gamma) {}

Partition CggcIterated::run(const Graph& g) {
    EppIterated scheme(ensembleSize_, rgMaker(gamma_), rgMaker(gamma_),
                       /*minImprovement=*/1e-4, /*maxLevels=*/16, "CGGCi");
    return scheme.run(g);
}

} // namespace grapr
