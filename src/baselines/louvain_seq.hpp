#pragma once
// Sequential Louvain method (Blondel et al. 2008) — the "original
// sequential implementation" competitor of §V-E(a). Identical objective and
// multilevel structure as PLM, but: strictly sequential node moves (so
// modularity increases monotonically, no stale data), and — like the
// reference code — an explicitly randomized node visiting order per sweep,
// the implementation detail the paper credits for its marginally better
// modularity.

#include "community/detector.hpp"

namespace grapr {

class LouvainSeq final : public CommunityDetector {
public:
    explicit LouvainSeq(double gamma = 1.0, count maxMoveIterations = 64)
        : gamma_(gamma), maxMoveIterations_(maxMoveIterations) {}

    Partition run(const Graph& g) override;

    std::string toString() const override { return "Louvain"; }

private:
    double gamma_;
    count maxMoveIterations_;

    /// Sequential move phase with randomized order; returns #moves.
    count movePhase(const Graph& g, Partition& zeta) const;

    Partition runRecursive(const Graph& g) const;
};

} // namespace grapr
