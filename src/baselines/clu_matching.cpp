#include "baselines/clu_matching.hpp"

#include <vector>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "structures/union_find.hpp"
#include "support/random.hpp"

namespace grapr {

Partition MatchingAgglomeration::run(const Graph& g) {
    // The hierarchy of contractions: maps[i] is the fine-to-coarse map of
    // round i. The final solution is the identity on the coarsest graph
    // projected back through the stack.
    std::vector<std::vector<node>> hierarchy;
    Graph current = g.isWeighted() ? g : g.toWeighted();

    for (count round = 0; round < maxRounds_; ++round) {
        const count bound = current.upperNodeIdBound();
        const double omegaE = current.totalEdgeWeight();
        if (omegaE <= 0.0) break;

        std::vector<double> volume(bound, 0.0);
        current.parallelForNodes(
            [&](node v) { volume[v] = current.volume(v); });

        // Phase 1: every node points to the neighbor whose contraction
        // yields the highest positive modularity gain; ties are broken
        // uniformly at random (reservoir choice) — deterministic ties
        // starve the matching on regular structures like street meshes,
        // where every node would point at its smallest-id neighbor.
        std::vector<node> candidate(bound, none);
        current.balancedParallelForNodes([&](node u) {
            node best = none;
            double bestGain = 0.0;
            count ties = 0;
            current.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v == u) return;
                const double gain =
                    w / omegaE -
                    gamma_ * (volume[u] * volume[v]) /
                        (2.0 * omegaE * omegaE);
                if (gain <= 0.0) return;
                if (gain > bestGain) {
                    bestGain = gain;
                    best = v;
                    ties = 1;
                } else if (gain == bestGain) {
                    ++ties;
                    if (Random::integer(ties) == 0) best = v;
                }
            });
            candidate[u] = best;
        });

        // Phase 2: grouping via union-find (chains and candidate cycles
        // collapse safely). Mutual candidates form matched pairs (handshake
        // matching — the CEL behaviour). With star adaptation, satellites
        // whose chosen hub did not reciprocate are matched pairwise with
        // each other — the CLU_TBB remedy for star-like structures where
        // plain matchings leave almost every satellite unmatched.
        UnionFind groupSets(bound);
        std::vector<node> pendingSatellite(bound, none);
        count merges = 0;
        current.forNodes([&](node u) {
            const node v = candidate[u];
            if (v == none) return;
            if (candidate[v] == u) {
                if (u < v) {
                    groupSets.unite(u, v);
                    ++merges;
                }
            } else if (starAdaptation_) {
                if (pendingSatellite[v] == none) {
                    pendingSatellite[v] = u;
                } else {
                    groupSets.unite(u, pendingSatellite[v]);
                    pendingSatellite[v] = none;
                    ++merges;
                }
            }
        });

        // Stop when the matching starves: a round that merges less than
        // 0.1% of the nodes signals the long tail where further rounds buy
        // nothing but full-graph sweeps (mutual-only matching hits this
        // early on hub-heavy graphs — the CEL weakness the star adaptation
        // addresses).
        if (merges == 0 || merges * 1000 < current.numberOfNodes()) break;

        Partition groups(bound);
        groups.allToSingletons();
        current.forNodes([&](node u) { groups.set(u, groupSets.find(u)); });

        ParallelPartitionCoarsening coarsener(true);
        CoarseningResult coarse = coarsener.run(current, groups);
        if (coarse.coarseGraph.numberOfNodes() >= current.numberOfNodes()) {
            break;
        }
        hierarchy.push_back(std::move(coarse.fineToCoarse));
        current = std::move(coarse.coarseGraph);
    }

    // Identity on the coarsest level, projected back to g.
    Partition coarsest(current.upperNodeIdBound());
    coarsest.allToSingletons();
    Partition zeta =
        ClusteringProjector::projectThroughHierarchy(coarsest, hierarchy);
    if (zeta.numberOfElements() < g.upperNodeIdBound()) {
        // No contraction ever happened; fall back to singletons on g.
        zeta = Partition(g.upperNodeIdBound());
        zeta.allToSingletons();
    }
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

} // namespace grapr
