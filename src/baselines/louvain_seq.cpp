#include "baselines/louvain_seq.hpp"

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "graph/graph_tools.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"

namespace grapr {

count LouvainSeq::movePhase(const Graph& g, Partition& zeta) const {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;

    const count communityBound = std::max<count>(zeta.upperBound(), bound);
    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.forNodes([&](node u) {
        nodeVolume[u] = g.volume(u);
        communityVolume[zeta[u]] += nodeVolume[u];
    });

    SparseAccumulator acc(communityBound);

    count totalMoves = 0;
    for (count iteration = 0; iteration < maxMoveIterations_; ++iteration) {
        count moved = 0;
        // The reference implementation shuffles the visiting order every
        // pass; preserved here (it is what distinguishes this baseline's
        // tie-breaking from PLM's implicit randomization).
        const std::vector<node> order = GraphTools::randomNodeOrder(g);
        for (node u : order) {
            if (g.degree(u) == 0) continue;
            const node current = zeta[u];
            acc.clear();
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v != u) acc.add(zeta[v], w);
            });
            const double volU = nodeVolume[u];
            const double weightToCurrent = acc[current];
            const double volCurrent = communityVolume[current] - volU;

            node bestCommunity = current;
            double bestDelta = 0.0;
            for (index c : acc.touched()) {
                const node candidate = static_cast<node>(c);
                if (candidate == current) continue;
                const double delta = deltaModularity(
                    omegaE, weightToCurrent, acc[c], volCurrent,
                    communityVolume[candidate], volU, gamma_);
                if (delta > bestDelta) {
                    bestDelta = delta;
                    bestCommunity = candidate;
                }
            }
            if (bestCommunity != current) {
                communityVolume[current] -= volU;
                communityVolume[bestCommunity] += volU;
                zeta.set(u, bestCommunity);
                ++moved;
            }
        }
        totalMoves += moved;
        if (moved == 0) break;
    }
    return totalMoves;
}

Partition LouvainSeq::runRecursive(const Graph& g) const {
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();
    const count moves = movePhase(g, zeta);
    if (moves == 0) return zeta;

    // Sequential coarsening, as in the reference implementation.
    ParallelPartitionCoarsening coarsener(false);
    CoarseningResult coarse = coarsener.run(g, zeta);
    if (coarse.coarseGraph.numberOfNodes() >= g.numberOfNodes()) return zeta;

    const Partition coarseSolution = runRecursive(coarse.coarseGraph);
    return ClusteringProjector::projectBack(coarseSolution,
                                            coarse.fineToCoarse);
}

Partition LouvainSeq::run(const Graph& g) {
    Partition zeta = runRecursive(g);
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

} // namespace grapr
