#include "baselines/rg.hpp"

#include <unordered_map>
#include <vector>

#include "support/random.hpp"

namespace grapr {

namespace {

/// Dynamic community graph for agglomeration: per-community hash adjacency
/// (community -> inter-community weight), community volumes, and a live
/// list with lazy deletion. Merges fold the smaller map into the larger
/// (weighted-union), giving near O(m log n) total merge cost.
struct CommunityGraph {
    std::vector<std::unordered_map<node, double>> weightTo;
    std::vector<double> volume;
    std::vector<node> alias;  // community -> surviving representative
    std::vector<node> live;   // candidates for random sampling
    double omegaE = 0.0;

    explicit CommunityGraph(const Graph& g) {
        const count bound = g.upperNodeIdBound();
        weightTo.resize(bound);
        volume.assign(bound, 0.0);
        alias.resize(bound);
        omegaE = g.totalEdgeWeight();
        for (node v = 0; v < bound; ++v) alias[v] = v;
        g.forNodes([&](node v) {
            volume[v] = g.volume(v);
            live.push_back(v);
        });
        g.forEdges([&](node u, node v, edgeweight w) {
            if (u == v) return; // loops only affect volume
            weightTo[u][v] += w;
            weightTo[v][u] += w;
        });
    }

    node resolve(node c) {
        while (alias[c] != c) {
            alias[c] = alias[alias[c]];
            c = alias[c];
        }
        return c;
    }

    /// Modularity gain of merging live communities a and b.
    double mergeGain(node a, node b, double gamma) const {
        const auto it = weightTo[a].find(b);
        const double w = it == weightTo[a].end() ? 0.0 : it->second;
        return w / omegaE -
               gamma * (volume[a] * volume[b]) / (2.0 * omegaE * omegaE);
    }

    /// Merge b into a (caller ensures both live and distinct).
    void merge(node a, node b) {
        if (weightTo[a].size() < weightTo[b].size()) std::swap(a, b);
        // Fold b's adjacency into a's, retargeting neighbors.
        for (const auto& [c0, w] : weightTo[b]) {
            const node c = c0;
            if (c == a) continue;
            weightTo[a][c] += w;
            auto& back = weightTo[c];
            back.erase(b);
            back[a] += w;
        }
        weightTo[a].erase(b);
        volume[a] += volume[b];
        weightTo[b].clear();
        alias[b] = a;
    }
};

} // namespace

Partition RandomizedGreedy::run(const Graph& g) {
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();
    if (g.numberOfEdges() == 0) return zeta;

    CommunityGraph cg(g);

    // Merge while positive gains are found. A community sampled with no
    // positive-gain neighbor counts as a failure; after enough consecutive
    // failures relative to the live count, declare the partition merged
    // out (the greedy optimum has been reached with high probability, and
    // a final exhaustive sweep below removes any doubt).
    count consecutiveFailures = 0;
    while (!cg.live.empty()) {
        if (consecutiveFailures > 4 * cg.live.size() + 64) break;

        // Sample up to sampleSize_ live communities; keep the best merge.
        node bestFrom = none, bestTo = none;
        double bestGain = 0.0;
        for (count s = 0; s < sampleSize_; ++s) {
            const index pick = Random::integer(cg.live.size());
            node c = cg.live[pick];
            const node resolved = cg.resolve(c);
            if (resolved != c) {
                // Lazy deletion: drop stale entry, re-sample next round.
                cg.live[pick] = cg.live.back();
                cg.live.pop_back();
                if (cg.live.empty()) break;
                continue;
            }
            for (const auto& [d, w] : cg.weightTo[c]) {
                const double gain = cg.mergeGain(c, d, gamma_);
                if (gain > bestGain) {
                    bestGain = gain;
                    bestFrom = c;
                    bestTo = d;
                }
            }
        }

        if (bestFrom == none) {
            ++consecutiveFailures;
            continue;
        }
        consecutiveFailures = 0;
        cg.merge(bestTo, bestFrom);
    }

    // Exhaustive clean-up sweep: the sampling loop above is probabilistic;
    // finish deterministically so the result is a true greedy local
    // optimum. Iterate until no live community has a positive-gain merge.
    bool improved = true;
    while (improved) {
        improved = false;
        for (node c = 0; c < cg.alias.size(); ++c) {
            if (!g.hasNode(c) || cg.resolve(c) != c) continue;
            node bestTo = none;
            double bestGain = 0.0;
            for (const auto& [d, w] : cg.weightTo[c]) {
                const double gain = cg.mergeGain(c, d, gamma_);
                if (gain > bestGain) {
                    bestGain = gain;
                    bestTo = d;
                }
            }
            if (bestTo != none) {
                cg.merge(bestTo, c);
                improved = true;
            }
        }
    }

    g.forNodes([&](node v) { zeta.set(v, cg.resolve(v)); });
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

} // namespace grapr
