#include "baselines/label_prop_seq.hpp"

#include "graph/graph_tools.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

namespace grapr {

Partition LabelPropSeq::run(const Graph& g) {
    const count bound = g.upperNodeIdBound();
    Partition zeta(bound);
    zeta.allToSingletons();
    std::vector<node>& label = zeta.vector();

    SparseAccumulator acc(bound);
    std::vector<node> bestLabels; // tie pool for random tie breaking

    iterations_ = 0;
    bool stable = false;
    while (!stable && iterations_ < maxIterations_) {
        stable = true;
        const std::vector<node> order = GraphTools::randomNodeOrder(g);
        for (node v : order) {
            if (g.degree(v) == 0) continue;
            acc.clear();
            g.forNeighborsOf(v, [&](node u, edgeweight w) {
                acc.add(label[u], w);
            });
            double bestWeight = -1.0;
            bestLabels.clear();
            for (index l : acc.touched()) {
                const double weight = acc[l];
                if (weight > bestWeight) {
                    bestWeight = weight;
                    bestLabels.clear();
                    bestLabels.push_back(static_cast<node>(l));
                } else if (weight == bestWeight) {
                    bestLabels.push_back(static_cast<node>(l));
                }
            }
            // Termination criterion of [25]: stop once every node already
            // has a label of the relative majority; switching between
            // equally heavy labels does not count as instability.
            const bool hasMajorityLabel = acc[label[v]] == bestWeight;
            const node chosen =
                bestLabels[Random::integer(bestLabels.size())];
            if (!hasMajorityLabel) stable = false;
            label[v] = chosen;
        }
        ++iterations_;
    }
    zeta.setUpperBound(static_cast<node>(bound));
    return zeta;
}

} // namespace grapr
