#pragma once
// CGGC and CGGCi — the Core Groups Graph Clusterer of Ovelgönne &
// Geyer-Schulz (DIMACS Pareto winner), rebuilt inside this framework:
// CGGC is one level of ensemble preprocessing with RG as both base and
// final algorithm (structurally the same scheme as EPP, §III-D); CGGCi
// iterates the preprocessing until the core-group quality stops improving.
// Both inherit RG's cost profile: highest modularity in the comparison,
// by far the largest running time (§V-E c).

#include "community/detector.hpp"

namespace grapr {

class Cggc final : public CommunityDetector {
public:
    explicit Cggc(count ensembleSize = 4, double gamma = 1.0);

    Partition run(const Graph& g) override;

    std::string toString() const override { return "CGGC"; }

private:
    count ensembleSize_;
    double gamma_;
};

class CggcIterated final : public CommunityDetector {
public:
    explicit CggcIterated(count ensembleSize = 4, double gamma = 1.0);

    Partition run(const Graph& g) override;

    std::string toString() const override { return "CGGCi"; }

private:
    count ensembleSize_;
    double gamma_;
};

} // namespace grapr
