#pragma once
// Sequential label propagation exactly as described by Raghavan et al.
// (2007): random visiting order per iteration, most-frequent neighbor label
// with uniformly random tie breaking, asynchronous updates, terminating
// when every node carries a label of the relative majority in its
// neighborhood. Serves as the reference implementation PLP is validated
// against, and quantifies what PLP's engineering (threshold, activity
// tracking, parallelism) buys.

#include "community/detector.hpp"

namespace grapr {

class LabelPropSeq final : public CommunityDetector {
public:
    explicit LabelPropSeq(count maxIterations = 1000)
        : maxIterations_(maxIterations) {}

    Partition run(const Graph& g) override;

    std::string toString() const override { return "LabelPropagation(seq)"; }

    count iterations() const noexcept { return iterations_; }

private:
    count maxIterations_;
    count iterations_ = 0;
};

} // namespace grapr
