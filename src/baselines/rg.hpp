#pragma once
// RG — randomized greedy agglomeration, our in-framework stand-in for the
// Randomized Greedy algorithm of Ovelgönne & Geyer-Schulz (the CNM family
// member that won the DIMACS Pareto challenge as part of CGGC). Starting
// from singletons, repeatedly pick a random community and merge it with
// the neighbor giving the highest modularity gain, as long as positive
// gains exist. The randomized vertex choice (instead of a global best-merge
// priority queue) is RG's defining trait and avoids CNM's unbalanced
// community growth.
//
// Sequential by nature (a global merge order), like the original — this is
// the expensive, high-quality end of the paper's comparison (§V-E c).

#include "community/detector.hpp"

namespace grapr {

class RandomizedGreedy final : public CommunityDetector {
public:
    /// `sampleSize`: communities examined per step (the best of the sample
    /// is merged); 1 reproduces plain randomized greedy.
    explicit RandomizedGreedy(double gamma = 1.0, count sampleSize = 4)
        : gamma_(gamma), sampleSize_(sampleSize) {}

    Partition run(const Graph& g) override;

    std::string toString() const override { return "RG"; }

private:
    double gamma_;
    count sampleSize_;
};

} // namespace grapr
