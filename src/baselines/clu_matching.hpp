#pragma once
// Matching-based parallel agglomeration — in-framework stand-ins for the
// two parallel DIMACS competitors of §V-E(b):
//
//  * CLU_TBB (Fagginger Auer & Bisseling): weight every edge with the
//    modularity change of contracting it, compute a heavy matching of
//    positive-gain edges, contract, recurse; with an adaptation for
//    star-like structures (satellites of a hub that cannot all match the
//    hub are allowed to join the hub's group or each other) that prevents
//    tiny matchings on scale-free graphs.
//  * CEL (Riedy et al., community-el): the same principle without the
//    star adaptation.
//
// Matching is computed with the locally-dominant (handshake) scheme: each
// node points to its best positive neighbor, mutual pointers form matched
// pairs — fully parallel per round.

#include "community/detector.hpp"

namespace grapr {

class MatchingAgglomeration final : public CommunityDetector {
public:
    /// `starAdaptation` = true gives the CLU_TBB-like variant, false the
    /// CEL-like one.
    explicit MatchingAgglomeration(bool starAdaptation, double gamma = 1.0,
                                   count maxRounds = 64)
        : starAdaptation_(starAdaptation), gamma_(gamma),
          maxRounds_(maxRounds) {}

    Partition run(const Graph& g) override;

    std::string toString() const override {
        return starAdaptation_ ? "CLU_TBB-like" : "CEL-like";
    }

private:
    bool starAdaptation_;
    double gamma_;
    count maxRounds_;
};

} // namespace grapr
