#pragma once
// Partition of the node set into disjoint communities, represented exactly
// as the paper prescribes (§III): an array indexed by node id containing
// integer community ids. Community ids are not required to be consecutive
// until compact() is called.

#include <map>
#include <vector>

#include "support/common.hpp"

namespace grapr {

class Partition {
public:
    Partition() = default;

    /// Partition over ids [0, n), all nodes unassigned (none).
    explicit Partition(count n) : data_(n, none), upperId_(0) {}

    /// Number of node slots.
    count numberOfElements() const noexcept { return data_.size(); }

    /// ζ(v): community of node v (none if unassigned).
    node operator[](node v) const { return data_[v]; }

    /// Assign node v to community c. c must be < upperBound() unless the
    /// caller later calls setUpperBound/compact.
    void set(node v, node c) { data_[v] = c; }

    /// One community per node: ζ(v) = v (the singleton clustering that
    /// seeds label propagation and the Louvain method).
    void allToSingletons();

    /// All nodes into community 0.
    void allToOne();

    /// Upper bound for community ids (ids are < upperBound()).
    node upperBound() const noexcept { return upperId_; }
    void setUpperBound(node bound) { upperId_ = bound; }

    /// Merge the communities of a and b; returns the surviving id (the
    /// smaller of the two current ids). O(n) — intended for small cases and
    /// tests, not inner loops.
    node mergeSubsets(node a, node b);

    /// Relabel community ids to consecutive integers [0, k), preserving
    /// relative order of first appearance when `byFirstAppearance`, else by
    /// ascending old id. Returns k.
    count compact(bool byFirstAppearance = false);

    /// Number of distinct communities among assigned nodes.
    count numberOfSubsets() const;

    /// Size of every community, indexed by community id (requires ids
    /// < upperBound()).
    std::vector<count> subsetSizes() const;

    /// Map community id -> member nodes (sparse; only non-empty entries).
    std::map<node, std::vector<node>> subsets() const;

    /// True if every node is assigned (no `none` entries).
    bool isComplete() const;

    /// True if ζ(u) == ζ(v).
    bool inSameSubset(node u, node v) const { return data_[u] == data_[v]; }

    /// Raw array access for hot loops.
    const std::vector<node>& vector() const noexcept { return data_; }
    std::vector<node>& vector() noexcept { return data_; }

    bool operator==(const Partition& other) const = default;

private:
    std::vector<node> data_;
    node upperId_ = 0;
};

} // namespace grapr
