#pragma once
// Partition of the node set into disjoint communities, represented exactly
// as the paper prescribes (§III): an array indexed by node id containing
// integer community ids. Community ids are not required to be consecutive
// until compact() is called.

#include <map>
#include <vector>

#include "support/common.hpp"
#include "support/race_check.hpp"

namespace grapr {

class Partition {
public:
    Partition() = default;

    /// Partition over ids [0, n), all nodes unassigned (none).
    explicit Partition(count n) : data_(n, none), upperId_(0) {
#ifdef GRAPR_RACE_CHECK
        shadow_.reset(n);
#endif
    }

    /// Number of node slots.
    count numberOfElements() const noexcept { return data_.size(); }

    /// ζ(v): community of node v (none if unassigned).
    node operator[](node v) const { return data_[v]; }

    /// Assign node v to community c. c must be < upperBound() unless the
    /// caller later calls setUpperBound/compact.
    ///
    /// Concurrency contract: parallel phases may call set() from many
    /// threads, but each node must be written by at most one thread per
    /// phase; concurrent *readers* of the label are tolerated (stale reads
    /// by design). Under GRAPR_RACE_CHECK the shadow log enforces the
    /// write half of that contract.
    void set(node v, node c) {
        GRAPR_RACE_WRITE(shadow_, v);
        data_[v] = c;
    }

    /// Move node v to community c — set() under its contract-facing name
    /// (the operation the shadow race checker is specified against).
    void moveToSubset(node v, node c) { set(v, c); }

    /// One community per node: ζ(v) = v (the singleton clustering that
    /// seeds label propagation and the Louvain method).
    void allToSingletons();

    /// All nodes into community 0.
    void allToOne();

    /// Upper bound for community ids (ids are < upperBound()).
    node upperBound() const noexcept { return upperId_; }
    void setUpperBound(node bound) { upperId_ = bound; }

    /// Merge the communities of a and b; returns the surviving id (the
    /// smaller of the two current ids). O(n) — intended for small cases and
    /// tests, not inner loops.
    node mergeSubsets(node a, node b);

    /// Relabel community ids to consecutive integers [0, k), preserving
    /// relative order of first appearance when `byFirstAppearance`, else by
    /// ascending old id. Returns k.
    count compact(bool byFirstAppearance = false);

    /// Number of distinct communities among assigned nodes.
    count numberOfSubsets() const;

    /// Size of every community, indexed by community id (requires ids
    /// < upperBound()).
    std::vector<count> subsetSizes() const;

    /// Map community id -> member nodes (sparse; only non-empty entries).
    std::map<node, std::vector<node>> subsets() const;

    /// True if every node is assigned (no `none` entries).
    bool isComplete() const;

    /// True if ζ(u) == ζ(v).
    bool inSameSubset(node u, node v) const { return data_[u] == data_[v]; }

    /// Raw array access for hot loops. Writers that bypass set() through
    /// this reference must call GRAPR_RACE_WRITE(raceShadow(), v)
    /// themselves to stay visible to the shadow race checker.
    const std::vector<node>& vector() const noexcept { return data_; }
    std::vector<node>& vector() noexcept { return data_; }

    bool operator==(const Partition& other) const {
        return data_ == other.data_ && upperId_ == other.upperId_;
    }

#ifdef GRAPR_RACE_CHECK
    race::ShadowCells& raceShadow() const noexcept { return shadow_; }
#endif

private:
    std::vector<node> data_;
    node upperId_ = 0;
#ifdef GRAPR_RACE_CHECK
    mutable race::ShadowCells shadow_;
#endif
};

} // namespace grapr
