#pragma once
// Cover: an overlapping community assignment — each node may belong to
// several communities. The paper names overlapping communities as the
// principal future extension of the framework (§VII); Cover is the
// overlapping counterpart of Partition with the same id conventions
// (integer community ids, compactable).

#include <algorithm>
#include <map>
#include <vector>

#include "support/common.hpp"
#include "support/race_check.hpp"

namespace grapr {

class Cover {
public:
    Cover() = default;

    explicit Cover(count n) : memberships_(n) {
#ifdef GRAPR_RACE_CHECK
        shadow_.reset(n);
#endif
    }

    count numberOfElements() const noexcept { return memberships_.size(); }

    /// Communities of node v (sorted, duplicate-free).
    const std::vector<node>& subsetsOf(node v) const {
        return memberships_[v];
    }

    /// Add node v to community c (no-op if already a member).
    ///
    /// Concurrency contract: a node's membership list may be mutated by at
    /// most one thread per parallel phase (there is no per-node lock; the
    /// upper-bound update additionally requires that concurrent phases
    /// partition the id space). GRAPR_RACE_CHECK enforces the per-node
    /// half of that contract via the shadow log.
    void addToSubset(node v, node c) {
        GRAPR_RACE_WRITE(shadow_, v);
        auto& sets = memberships_[v];
        const auto it = std::lower_bound(sets.begin(), sets.end(), c);
        if (it == sets.end() || *it != c) sets.insert(it, c);
        upperId_ = std::max<node>(upperId_, c + 1);
    }

    /// Remove node v from community c (no-op if not a member).
    void removeFromSubset(node v, node c) {
        GRAPR_RACE_WRITE(shadow_, v);
        auto& sets = memberships_[v];
        const auto it = std::lower_bound(sets.begin(), sets.end(), c);
        if (it != sets.end() && *it == c) sets.erase(it);
    }

    /// Move node v from community `from` to community `to`.
    void moveToSubset(node v, node from, node to) {
        removeFromSubset(v, from);
        addToSubset(v, to);
    }

    bool contains(node v, node c) const {
        const auto& sets = memberships_[v];
        return std::binary_search(sets.begin(), sets.end(), c);
    }

    /// Do u and v share at least one community?
    bool inSameSubset(node u, node v) const {
        const auto& a = memberships_[u];
        const auto& b = memberships_[v];
        auto ia = a.begin();
        auto ib = b.begin();
        while (ia != a.end() && ib != b.end()) {
            if (*ia < *ib) {
                ++ia;
            } else if (*ib < *ia) {
                ++ib;
            } else {
                return true;
            }
        }
        return false;
    }

    node upperBound() const noexcept { return upperId_; }
    void setUpperBound(node bound) { upperId_ = std::max(upperId_, bound); }

    /// Number of distinct non-empty communities.
    count numberOfSubsets() const;

    /// Map community id -> member nodes (only non-empty communities).
    std::map<node, std::vector<node>> subsets() const;

    /// Sizes of all non-empty communities, keyed by id.
    std::map<node, count> subsetSizes() const;

    /// Number of memberships of v.
    count membershipCount(node v) const { return memberships_[v].size(); }

    /// Fraction of nodes with more than one membership.
    double overlapFraction() const;

    /// Relabel community ids to consecutive [0, k); returns k.
    count compact();

    /// A Partition is a Cover with exactly one membership per node; this
    /// conversion asserts unique membership (nodes with none stay
    /// unassigned; multiple memberships throw).
    class Partition toPartition() const;

    /// Lift a Partition into a Cover (one membership per assigned node).
    static Cover fromPartition(const class Partition& zeta);

private:
    std::vector<std::vector<node>> memberships_;
    node upperId_ = 0;
#ifdef GRAPR_RACE_CHECK
    mutable race::ShadowCells shadow_;
#endif
};

} // namespace grapr
