#include "structures/cover.hpp"

#include <unordered_map>

#include "structures/partition.hpp"

namespace grapr {

count Cover::numberOfSubsets() const {
    std::vector<node> ids;
    for (const auto& sets : memberships_) {
        ids.insert(ids.end(), sets.begin(), sets.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids.size();
}

std::map<node, std::vector<node>> Cover::subsets() const {
    std::map<node, std::vector<node>> result;
    for (node v = 0; v < memberships_.size(); ++v) {
        for (node c : memberships_[v]) result[c].push_back(v);
    }
    return result;
}

std::map<node, count> Cover::subsetSizes() const {
    std::map<node, count> sizes;
    for (const auto& sets : memberships_) {
        for (node c : sets) ++sizes[c];
    }
    return sizes;
}

double Cover::overlapFraction() const {
    if (memberships_.empty()) return 0.0;
    count overlapping = 0;
    for (const auto& sets : memberships_) {
        if (sets.size() > 1) ++overlapping;
    }
    return static_cast<double>(overlapping) /
           static_cast<double>(memberships_.size());
}

count Cover::compact() {
    std::unordered_map<node, node> remap;
    for (auto& sets : memberships_) {
        for (auto& c : sets) {
            auto [it, inserted] =
                remap.emplace(c, static_cast<node>(remap.size()));
            c = it->second;
        }
        std::sort(sets.begin(), sets.end());
    }
    upperId_ = static_cast<node>(remap.size());
    return remap.size();
}

Partition Cover::toPartition() const {
    Partition zeta(memberships_.size());
    for (node v = 0; v < memberships_.size(); ++v) {
        if (memberships_[v].empty()) continue;
        require(memberships_[v].size() == 1,
                "Cover::toPartition: node has multiple memberships");
        zeta.set(v, memberships_[v].front());
    }
    zeta.setUpperBound(upperId_);
    return zeta;
}

Cover Cover::fromPartition(const Partition& zeta) {
    Cover cover(zeta.numberOfElements());
    for (node v = 0; v < zeta.numberOfElements(); ++v) {
        if (zeta[v] != none) cover.addToSubset(v, zeta[v]);
    }
    cover.setUpperBound(zeta.upperBound());
    return cover;
}

} // namespace grapr
