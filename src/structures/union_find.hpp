#pragma once
// Union-find with path halving and union by rank. Used by the connected
// components fallback and by tests that need an oracle for "same community"
// closures (e.g. verifying the EPP hash combiner against Eq. III.2).

#include <vector>

#include "support/common.hpp"

namespace grapr {

class UnionFind {
public:
    explicit UnionFind(count n);

    /// Representative of v's set (with path halving).
    node find(node v);

    /// Merge the sets of a and b; returns the surviving representative.
    node unite(node a, node b);

    /// Are a and b in the same set?
    bool connected(node a, node b) { return find(a) == find(b); }

    /// Number of disjoint sets.
    count numberOfSets() const noexcept { return sets_; }

    /// Convert to a vector of representative ids (one entry per element).
    std::vector<node> toVector();

private:
    std::vector<node> parent_;
    std::vector<std::uint8_t> rank_;
    count sets_;
};

} // namespace grapr
