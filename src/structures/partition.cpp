#include "structures/partition.hpp"

#include <algorithm>
#include <unordered_map>

#include <omp.h>

namespace grapr {

void Partition::allToSingletons() {
    GRAPR_RACE_PHASE("Partition::allToSingletons");
    const auto n = static_cast<std::int64_t>(data_.size());
#pragma omp parallel for default(none) shared(n) schedule(static)
    for (std::int64_t v = 0; v < n; ++v) {
        GRAPR_RACE_WRITE(shadow_, static_cast<std::size_t>(v));
        data_[static_cast<std::size_t>(v)] = static_cast<node>(v);
    }
    upperId_ = static_cast<node>(data_.size());
}

void Partition::allToOne() {
    std::fill(data_.begin(), data_.end(), 0);
    upperId_ = data_.empty() ? 0 : 1;
}

node Partition::mergeSubsets(node a, node b) {
    if (a == b) return a;
    const node keep = std::min(a, b);
    const node drop = std::max(a, b);
    for (auto& c : data_) {
        if (c == drop) c = keep;
    }
    return keep;
}

count Partition::compact(bool byFirstAppearance) {
    std::unordered_map<node, node> remap;
    remap.reserve(1024);
    if (byFirstAppearance) {
        node next = 0;
        for (auto& c : data_) {
            if (c == none) continue;
            auto [it, inserted] = remap.emplace(c, next);
            if (inserted) ++next;
            c = it->second;
        }
        upperId_ = static_cast<node>(remap.size());
        return remap.size();
    }
    // Ascending old-id order: gather distinct ids, sort, build map.
    std::vector<node> ids;
    for (node c : data_) {
        if (c != none) ids.push_back(c);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    remap.reserve(ids.size());
    for (index i = 0; i < ids.size(); ++i) remap[ids[i]] = static_cast<node>(i);
    for (auto& c : data_) {
        if (c != none) c = remap[c];
    }
    upperId_ = static_cast<node>(ids.size());
    return ids.size();
}

count Partition::numberOfSubsets() const {
    std::vector<node> ids;
    ids.reserve(data_.size());
    for (node c : data_) {
        if (c != none) ids.push_back(c);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids.size();
}

std::vector<count> Partition::subsetSizes() const {
    std::vector<count> sizes(upperId_, 0);
    for (node c : data_) {
        if (c != none) {
            require(c < upperId_, "subsetSizes: community id >= upperBound");
            ++sizes[c];
        }
    }
    return sizes;
}

std::map<node, std::vector<node>> Partition::subsets() const {
    std::map<node, std::vector<node>> result;
    for (node v = 0; v < data_.size(); ++v) {
        if (data_[v] != none) result[data_[v]].push_back(v);
    }
    return result;
}

bool Partition::isComplete() const {
    return std::none_of(data_.begin(), data_.end(),
                        [](node c) { return c == none; });
}

} // namespace grapr
