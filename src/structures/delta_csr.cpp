#include "structures/delta_csr.hpp"

#include <atomic>
#include <cstdint>

#include <omp.h>

#include "support/parallel.hpp"

namespace grapr {

CsrGraph applyDelta(const CsrGraph& base, const CsrDelta& delta,
                    bool weighted) {
    const count oldBound = base.upperNodeIdBound();
    const count bound = delta.newBound;
    require(bound >= oldBound, "applyDelta: delta shrinks the node bound");
    require(delta.insOffsets.size() == bound + 1 &&
                delta.delOffsets.size() == bound + 1,
            "applyDelta: delta offset arrays do not match newBound");

    const std::vector<index>& oldOffsets = base.offsets();
    const std::vector<node>& oldNeighbors = base.neighborArray();
    const std::vector<edgeweight>& oldWeights = base.weightArray();
    const bool baseWeighted = !oldWeights.empty();

    // Pass 1: new degree per row. A delete target missing from its base
    // row is an engine bug (normalization checks presence against the
    // base), so only a debit-exceeds-degree sanity check is kept here.
    std::vector<count> degrees(bound, 0);
    std::atomic<bool> underflow{false};
    const auto sbound = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(degrees, delta, oldOffsets, oldBound, sbound, underflow)          \
    schedule(static)
    for (std::int64_t sv = 0; sv < sbound; ++sv) {
        const auto v = static_cast<node>(sv);
        const count oldDeg =
            v < oldBound
                ? static_cast<count>(oldOffsets[v + 1] - oldOffsets[v])
                : 0;
        const count ins =
            static_cast<count>(delta.insOffsets[v + 1] - delta.insOffsets[v]);
        const count del =
            static_cast<count>(delta.delOffsets[v + 1] - delta.delOffsets[v]);
        if (del > oldDeg) {
            underflow.store(true, std::memory_order_relaxed);
        } else {
            degrees[v] = oldDeg + ins - del;
        }
    }
    require(!underflow.load(),
            "applyDelta: delete list exceeds base row degree");

    // Pass 2: exclusive prefix sum -> new offsets.
    const count total = Parallel::prefixSum(degrees);
    std::vector<index> offsets(bound + 1);
    for (node v = 0; v < bound; ++v) offsets[v] = degrees[v];
    offsets[bound] = total;

    std::vector<node> neighbors(total);
    std::vector<edgeweight> weights(weighted ? total : 0);

    // Pass 3: per-row scatter. Untouched rows copy their old slab;
    // touched rows merge (old row minus deletes) with the insert list.
    // Both inputs are sorted ascending and insert targets never collide
    // with surviving old targets, so a two-pointer merge suffices.
#pragma omp parallel for default(none)                                       \
    shared(neighbors, weights, offsets, delta, oldOffsets, oldNeighbors,     \
               oldWeights, oldBound, sbound, weighted, baseWeighted)         \
    schedule(guided)
    for (std::int64_t sv = 0; sv < sbound; ++sv) {
        const auto v = static_cast<node>(sv);
        const index oldLo = v < oldBound ? oldOffsets[v] : 0;
        const index oldHi = v < oldBound ? oldOffsets[v + 1] : 0;
        index insPos = delta.insOffsets[v];
        const index insEnd = delta.insOffsets[v + 1];
        index delPos = delta.delOffsets[v];
        const index delEnd = delta.delOffsets[v + 1];
        index out = offsets[v];

        if (insPos == insEnd && delPos == delEnd) {
            // Fast path: row untouched by the batch.
            for (index i = oldLo; i < oldHi; ++i, ++out) {
                neighbors[out] = oldNeighbors[i];
                if (weighted) {
                    weights[out] = baseWeighted ? oldWeights[i] : 1.0;
                }
            }
            continue;
        }

        for (index i = oldLo; i < oldHi; ++i) {
            const node target = oldNeighbors[i];
            if (delPos < delEnd && delta.delTargets[delPos] == target) {
                ++delPos; // edge deleted by the batch
                continue;
            }
            while (insPos < insEnd && delta.insTargets[insPos] < target) {
                neighbors[out] = delta.insTargets[insPos];
                if (weighted) weights[out] = delta.insWeights[insPos];
                ++insPos;
                ++out;
            }
            neighbors[out] = target;
            if (weighted) weights[out] = baseWeighted ? oldWeights[i] : 1.0;
            ++out;
        }
        for (; insPos < insEnd; ++insPos, ++out) {
            neighbors[out] = delta.insTargets[insPos];
            if (weighted) weights[out] = delta.insWeights[insPos];
        }
    }

    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights), weighted);
}

} // namespace grapr
