#pragma once
// Delta-CSR assembly — builds generation N+1 of a frozen CsrGraph from
// generation N plus a normalized edge delta, in parallel, without touching
// the base arrays (DESIGN.md "Streaming updates and snapshot isolation").
//
// The streaming engine normalizes an EdgeBatch down to net per-edge
// effects and scatters them into per-row insert/delete lists (CsrDelta,
// itself CSR-shaped: prefix-summed offsets into flat target/weight
// arrays). Assembly is then a three-pass parallel merge:
//
//   1. new degree per row = old degree + inserts − deletes   (parallel)
//   2. exclusive prefix sum over degrees → new offsets       (parallel)
//   3. per-row scatter: untouched rows memcpy their old slab; touched
//      rows merge (sorted old row − deletes) with sorted inserts, so
//      the sorted-adjacency invariant of the engine is maintained
//      (binary-search edge lookups stay valid on every generation).
//
// Cost is O(n + m + |delta|) total work per batch — the base graph is
// streamed once — while the paper-style alternative (mutate an adjacency
// Graph, re-sort, re-freeze) pays an extra O(m log d) sort per batch.
// bench/micro_stream.cpp measures exactly that ratio.

#include <vector>

#include "graph/csr_graph.hpp"
#include "support/common.hpp"

namespace grapr {

/// Net effect of a batch on CSR rows, grouped and sorted by row. Every
/// logical edge {u, v} contributes entries to BOTH rows u and v (once for
/// a self-loop). Insert targets within a row are strictly ascending and
/// disjoint from the surviving old row; delete targets are strictly
/// ascending and a subset of the old row. StreamingGraph::apply produces
/// deltas with these invariants from an arbitrary EdgeBatch.
struct CsrDelta {
    /// Node-id bound of the NEW generation (>= base bound; grows when a
    /// batch inserts edges with previously unseen endpoints).
    count newBound = 0;
    /// Per-row slices: ins/del entries of row v live at
    /// [insOffsets[v], insOffsets[v+1]) / [delOffsets[v], delOffsets[v+1]).
    std::vector<index> insOffsets;      // size newBound + 1
    std::vector<index> delOffsets;      // size newBound + 1
    std::vector<node> insTargets;
    std::vector<edgeweight> insWeights; // parallels insTargets (weighted)
    std::vector<node> delTargets;

    count insertHalfEdges() const noexcept { return insTargets.size(); }
    count deleteHalfEdges() const noexcept { return delTargets.size(); }
    bool empty() const noexcept {
        return insTargets.empty() && delTargets.empty();
    }
};

/// Assemble the next-generation CSR arrays from `base` + `delta`.
/// `base` rows must be sorted ascending (the engine's invariant); the
/// result rows are sorted ascending. Throws if a delete target is missing
/// from its base row (the engine's normalization guarantees it is not).
/// The returned CsrGraph re-derives edge counts, self-loops, total weight
/// and volumes in parallel via the raw-array constructor.
CsrGraph applyDelta(const CsrGraph& base, const CsrDelta& delta,
                    bool weighted);

} // namespace grapr
