#include "structures/union_find.hpp"

namespace grapr {

UnionFind::UnionFind(count n)
    : parent_(n), rank_(n, 0), sets_(n) {
    for (node v = 0; v < n; ++v) parent_[v] = v;
}

node UnionFind::find(node v) {
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]]; // path halving
        v = parent_[v];
    }
    return v;
}

node UnionFind::unite(node a, node b) {
    node ra = find(a);
    node rb = find(b);
    if (ra == rb) return ra;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --sets_;
    return ra;
}

std::vector<node> UnionFind::toVector() {
    std::vector<node> result(parent_.size());
    for (node v = 0; v < parent_.size(); ++v) result[v] = find(v);
    return result;
}

} // namespace grapr
