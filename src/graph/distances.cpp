#include "graph/distances.hpp"

#include <cmath>

namespace grapr {

void Bfs::run(node source) {
    require(g_->hasNode(source), "Bfs: source does not exist");
    const count bound = g_->upperNodeIdBound();
    distance_.assign(bound, unreachable);
    distance_[source] = 0;
    eccentricity_ = 0;
    farthest_ = source;
    reached_ = 1;

    std::vector<node> frontier{source};
    std::vector<node> next;
    count level = 0;
    while (!frontier.empty()) {
        ++level;
        next.clear();
        for (node u : frontier) {
            g_->forNeighborsOf(u, [&](node v, edgeweight) {
                if (distance_[v] != unreachable) return;
                distance_[v] = level;
                next.push_back(v);
            });
        }
        if (!next.empty()) {
            eccentricity_ = level;
            farthest_ = next.back();
            reached_ += next.size();
        }
        frontier.swap(next);
    }
}

count approximateDiameter(const Graph& g, node seed, count sweeps) {
    if (g.isEmpty()) return 0;
    if (!g.hasNode(seed)) {
        seed = g.nodeIds().front();
    }
    Bfs bfs(g);
    count best = 0;
    node start = seed;
    for (count sweep = 0; sweep < sweeps; ++sweep) {
        bfs.run(start);
        if (bfs.eccentricity() <= best && sweep > 0) break; // converged
        best = std::max(best, bfs.eccentricity());
        start = bfs.farthestNode();
    }
    return best;
}

double degreeAssortativity(const Graph& g) {
    // Pearson correlation over edge endpoint degree pairs, each non-loop
    // edge contributing both orientations (the standard symmetric form).
    double sumX = 0.0, sumXX = 0.0, sumXY = 0.0;
    count pairs = 0;
    g.forEdges([&](node u, node v, edgeweight) {
        if (u == v) return;
        const double du = static_cast<double>(g.degree(u));
        const double dv = static_cast<double>(g.degree(v));
        sumX += du + dv;
        sumXX += du * du + dv * dv;
        sumXY += 2.0 * du * dv;
        pairs += 2;
    });
    if (pairs == 0) return 0.0;
    const double n = static_cast<double>(pairs);
    const double meanX = sumX / n;
    const double varX = sumXX / n - meanX * meanX;
    const double covXY = sumXY / n - meanX * meanX;
    if (varX <= 0.0) return 0.0;
    return covXY / varX;
}

} // namespace grapr
