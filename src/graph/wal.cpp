#include "graph/wal.hpp"

#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GRAPR_HAVE_POSIX_SYNC 1
#endif

#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "support/checksum.hpp"
#include "support/fault.hpp"

namespace grapr::wal {

namespace {

constexpr char kMagic[4] = {'G', 'W', 'A', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordHeaderBytes = 8;  // payloadBytes + crc
constexpr std::size_t kPayloadHeaderBytes = 12; // generation + opCount
constexpr std::size_t kOpBytes = 17;            // kind + u + v + w

void putU32(unsigned char* dst, std::uint32_t v) {
    std::memcpy(dst, &v, sizeof v);
}
void putU64(unsigned char* dst, std::uint64_t v) {
    std::memcpy(dst, &v, sizeof v);
}
std::uint32_t getU32(const unsigned char* src) {
    std::uint32_t v = 0;
    std::memcpy(&v, src, sizeof v);
    return v;
}
std::uint64_t getU64(const unsigned char* src) {
    std::uint64_t v = 0;
    std::memcpy(&v, src, sizeof v);
    return v;
}

std::vector<unsigned char> encode(const EdgeBatch& batch,
                                  std::uint64_t generation) {
    require(batch.size() <= 0xffffffffull,
            "WAL record: batch exceeds 2^32 ops");
    std::vector<unsigned char> payload(
        kPayloadHeaderBytes + static_cast<std::size_t>(batch.size()) * kOpBytes);
    putU64(payload.data(), generation);
    putU32(payload.data() + 8, static_cast<std::uint32_t>(batch.size()));
    std::size_t at = kPayloadHeaderBytes;
    for (const EdgeOp& op : batch.ops()) {
        payload[at] = op.kind == EdgeOp::Kind::Insert ? 1 : 0;
        putU32(payload.data() + at + 1, op.u);
        putU32(payload.data() + at + 5, op.v);
        std::memcpy(payload.data() + at + 9, &op.w, sizeof op.w);
        at += kOpBytes;
    }
    return payload;
}

/// Structural decode of one CRC-verified payload. Returns false when the
/// payload is inconsistent with its own length (treated as torn).
bool decode(const unsigned char* payload, std::size_t bytes,
            WalRecord& out) {
    if (bytes < kPayloadHeaderBytes) return false;
    out.generation = getU64(payload);
    const std::uint32_t opCount = getU32(payload + 8);
    if (bytes != kPayloadHeaderBytes +
                     static_cast<std::size_t>(opCount) * kOpBytes) {
        return false;
    }
    std::size_t at = kPayloadHeaderBytes;
    for (std::uint32_t i = 0; i < opCount; ++i) {
        const unsigned char kind = payload[at];
        const node u = getU32(payload + at + 1);
        const node v = getU32(payload + at + 5);
        edgeweight w = 0.0;
        std::memcpy(&w, payload + at + 9, sizeof w);
        if (kind == 1) {
            out.batch.insert(u, v, w);
        } else if (kind == 0) {
            out.batch.remove(u, v);
        } else {
            return false;
        }
        at += kOpBytes;
    }
    return true;
}

} // namespace

WalWriter::WalWriter(const std::string& path, std::uint64_t baseGeneration,
                     count groupCommit)
    : path_(path), groupCommit_(groupCommit > 0 ? groupCommit : 1) {
    GRAPR_FAULT_POINT("wal.create.open");
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
        throw io::IoError(path, 0, 0, "cannot create WAL segment");
    }
    // Unbuffered: every fwrite reaches the kernel, so the file's real
    // length is always the appended prefix and rollback-by-truncate is
    // exact.
    std::setvbuf(file_, nullptr, _IONBF, 0);
    unsigned char header[kHeaderBytes];
    std::memcpy(header, kMagic, 4);
    putU32(header + 4, kVersion);
    putU64(header + 8, baseGeneration);
    try {
        GRAPR_FAULT_POINT("wal.create.write");
        writeAll(header, kHeaderBytes);
        bytes_ = kHeaderBytes;
        syncNow(); // a durable (empty) segment exists before any append
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        std::remove(path.c_str());
        throw;
    }
}

WalWriter::WalWriter(WalWriter&& other) noexcept {
    *this = std::move(other);
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
    if (this != &other) {
        close();
        file_ = std::exchange(other.file_, nullptr);
        path_ = std::move(other.path_);
        other.path_.clear();
        groupCommit_ = other.groupCommit_;
        bytes_ = std::exchange(other.bytes_, 0);
        records_ = std::exchange(other.records_, 0);
        unsynced_ = std::exchange(other.unsynced_, 0);
        poisoned_ = std::exchange(other.poisoned_, false);
    }
    return *this;
}

WalWriter::~WalWriter() {
    close();
}

void WalWriter::writeAll(const unsigned char* data, std::size_t bytes) {
    GRAPR_FAULT_POINT("wal.write");
    if (std::fwrite(data, 1, bytes, file_) != bytes) {
        throw io::IoError(path_, 0, bytes_, "WAL write failed (disk full?)");
    }
}

void WalWriter::syncNow() {
    GRAPR_FAULT_POINT("wal.append.fsync");
#ifdef GRAPR_HAVE_POSIX_SYNC
    if (::fsync(::fileno(file_)) != 0) {
        throw io::IoError(path_, 0, bytes_, "WAL fsync failed");
    }
#endif
    unsynced_ = 0;
}

void WalWriter::append(const EdgeBatch& batch, std::uint64_t generation) {
    require(isOpen(), "WalWriter::append: no segment open");
    require(!poisoned_,
            "WalWriter::append: writer poisoned by a failed rollback");
    const std::vector<unsigned char> payload = encode(batch, generation);
    std::vector<unsigned char> record(kRecordHeaderBytes + payload.size());
    putU32(record.data(), static_cast<std::uint32_t>(payload.size()));
    putU32(record.data() + 4, crc32(payload.data(), payload.size()));
    std::memcpy(record.data() + kRecordHeaderBytes, payload.data(),
                payload.size());

    const count offset = bytes_;
    const count prevRecords = records_;
    const count prevUnsynced = unsynced_;
    bool wrote = false;
    try {
        GRAPR_FAULT_POINT("wal.append.write");
        writeAll(record.data(), record.size());
        wrote = true;
        bytes_ += record.size();
        ++records_;
        ++unsynced_;
        if (unsynced_ >= groupCommit_) syncNow();
    } catch (...) {
        // Strong guarantee: roll the segment back to its pre-append
        // length. Two situations still poison the writer:
        //  - the rollback truncate itself fails (the on-disk tail is in
        //    an unknown state);
        //  - an fsync failed while OLDER acknowledged appends sat in the
        //    group-commit window (they can no longer be made durable).
        bool rolledBack = !GRAPR_FAULT_INJECT("wal.rollback.truncate");
        if (rolledBack) {
            std::error_code ec;
            std::filesystem::resize_file(path_, offset, ec);
            rolledBack = !ec;
        }
        if (rolledBack) {
            bytes_ = offset;
            records_ = prevRecords;
            unsynced_ = prevUnsynced;
            if (wrote && prevUnsynced > 0) poisoned_ = true;
        } else {
            poisoned_ = true;
        }
        throw;
    }
}

void WalWriter::sync() {
    require(isOpen(), "WalWriter::sync: no segment open");
    if (unsynced_ > 0) syncNow();
}

void WalWriter::close() {
    if (!isOpen()) return;
    if (!poisoned_ && unsynced_ > 0) {
        try {
            syncNow();
        } catch (...) {
            // Swallowed by contract: close happens at rotation/teardown,
            // when a fresher checkpoint supersedes this segment.
        }
    }
    std::fclose(file_);
    file_ = nullptr;
}

ReplayResult replay(const std::string& path, bool truncateTorn) {
    ReplayResult result;
    {
        io::MappedFile file(path);
        const auto* bytes =
            reinterpret_cast<const unsigned char*>(file.data());
        const std::size_t size = file.size();
        if (size < kHeaderBytes) {
            // A header torn by a crash during segment creation: nothing
            // was ever acknowledged through this segment.
            result.torn = true;
            result.validBytes = 0;
            return result;
        }
        if (std::memcmp(bytes, kMagic, 4) != 0) {
            throw io::IoError(path, 0, 0, "not a GWAL segment (bad magic)");
        }
        const std::uint32_t version = getU32(bytes + 4);
        if (version != kVersion) {
            throw io::IoError(path, 0, 4, "unsupported GWAL version " +
                                              std::to_string(version));
        }
        result.baseGeneration = getU64(bytes + 8);

        std::size_t pos = kHeaderBytes;
        std::uint64_t expectedGeneration = result.baseGeneration + 1;
        while (pos + kRecordHeaderBytes <= size) {
            const std::uint32_t payloadBytes = getU32(bytes + pos);
            if (payloadBytes < kPayloadHeaderBytes ||
                payloadBytes > size - pos - kRecordHeaderBytes) {
                break; // length prefix overruns the file: torn tail
            }
            const std::uint32_t storedCrc = getU32(bytes + pos + 4);
            const unsigned char* payload = bytes + pos + kRecordHeaderBytes;
            if (crc32(payload, payloadBytes) != storedCrc) {
                break; // payload damaged: torn tail
            }
            WalRecord record;
            if (!decode(payload, payloadBytes, record)) {
                break; // structurally inconsistent: torn tail
            }
            if (record.generation != expectedGeneration) {
                break; // breaks the baseGeneration+k sequence: torn tail
            }
            ++expectedGeneration;
            result.records.push_back(std::move(record));
            pos += kRecordHeaderBytes + payloadBytes;
        }
        result.validBytes = pos;
        result.torn = pos < size;
    } // unmap before truncating

    if (result.torn && truncateTorn) {
        GRAPR_FAULT_POINT("wal.replay.truncate");
        std::error_code ec;
        std::filesystem::resize_file(path, result.validBytes, ec);
        if (ec) {
            throw io::IoError(path, 0, result.validBytes,
                              "failed to truncate torn WAL tail");
        }
    }
    return result;
}

} // namespace grapr::wal
