#pragma once
// Parallel graph construction.
//
// Generators produce edges concurrently; inserting them into Graph's
// per-node vectors directly would need a lock per node. GraphBuilder
// instead buffers (u, v, w) triples in per-thread arrays, then assembles
// the adjacency structure in three parallel passes:
//   1. count the degree contribution of every triple (atomic increments),
//   2. size all adjacency arrays,
//   3. scatter the triples into their final slots (atomic slot counters).
// Optionally deduplicates parallel edges (keeping one instance, summing or
// keeping unit weights) — R-MAT and configuration-model generators emit
// duplicates by construction.

#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "support/common.hpp"

namespace grapr {

class GraphBuilder {
public:
    /// Builder for a graph with n nodes.
    explicit GraphBuilder(count n, bool weighted = false);

    count numberOfNodes() const noexcept { return n_; }

    /// Thread-safe: record undirected edge {u, v}. May be called from any
    /// OpenMP thread inside a parallel region.
    void addEdge(node u, node v, edgeweight w = 1.0);

    /// Number of triples buffered so far (all threads).
    count bufferedEdges() const;

    /// Assemble the Graph. `dedup` removes parallel edges; with
    /// `sumWeights`, the surviving instance carries the sum of the
    /// duplicates' weights (needed when aggregating coarse-graph edges),
    /// otherwise the first instance's weight. The builder is consumed.
    Graph build(bool dedup = false, bool sumWeights = false);

private:
    struct Triple {
        node u;
        node v;
        edgeweight w;
    };

    count n_;
    bool weighted_;
    std::vector<std::vector<Triple>> perThread_;
    // Overflow path for threads beyond the pool sized at construction time
    // (the thread count can be raised between ctor and addEdge). Guarded by
    // a lock — falling back to another thread's buffer would race.
    std::mutex overflowLock_;
    std::vector<Triple> overflow_;
};

} // namespace grapr
