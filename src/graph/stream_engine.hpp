#pragma once
// StreamingGraph — double-buffered snapshot engine over frozen CsrGraphs
// (DESIGN.md "Streaming updates and snapshot isolation").
//
// The engine holds one *published* immutable generation at a time. Readers
// either pin() a generation (a shared_ptr keeps the whole snapshot alive
// for as long as they hold it — safe across arbitrarily many publishes) or
// take a lightweight current() view (borrowed, valid only until the next
// publish; GRAPR_VIEW_CHECK builds abort a view that crosses the publish
// boundary, naming both the acquisition and the publish site). Writers
// submit EdgeBatches through apply()/GraphLog::commit(): the batch is
// normalized against the frozen base, assembled into generation N+1 by the
// parallel delta-CSR merge (structures/delta_csr.hpp) while readers keep
// serving generation N untouched, and then published by one pointer swap.
//
// Epoch lifecycle of a generation:
//
//   assembling ──publish──▶ current ──next publish──▶ retired ──▶ freed
//                              │                        │
//                        pin()/current()          pinned readers keep
//                           serve it              serving it; freed when
//                                                 the last pin drops
//
// Concurrency contract:
//   - any number of concurrent readers, via pin() or current();
//   - concurrent writers are serialized on an internal writer mutex
//     (batches apply atomically, in some total order);
//   - readers never block writers and vice versa beyond the O(1)
//     head-pointer handoff (a mutex-guarded shared_ptr copy, chosen over
//     atomic<shared_ptr> for portability and TSan transparency).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "graph/graph_log.hpp"
#include "support/common.hpp"
#include "support/view_check.hpp"

namespace grapr {

/// One immutable published generation. The CsrGraph is assembled from raw
/// arrays, so its own view stamp is disengaged — staleness of *borrowed*
/// engine views is tracked by the engine's generation cell instead, and
/// pinned snapshots are immortal-while-held by design.
struct StreamSnapshot {
    std::uint64_t generation = 0;
    CsrGraph graph;
};

using SnapshotPtr = std::shared_ptr<const StreamSnapshot>;

/// Borrowed read handle on the engine's current generation. Holds the
/// snapshot alive (memory-safe even if the engine publishes or dies), but
/// the *contract* is that a StreamView is only read while its generation
/// is still the published head — a reader that wants to survive publishes
/// must pin() instead. GRAPR_VIEW_CHECK enforces the contract at runtime:
/// graph() aborts after a publish, reporting where the view was taken and
/// where the publish happened.
class StreamView {
public:
    const CsrGraph& graph() const {
        GRAPR_VIEW_ASSERT(stamp_);
        return snapshot_->graph;
    }
    std::uint64_t generation() const noexcept {
        return snapshot_->generation;
    }

private:
    friend class StreamingGraph;
#ifdef GRAPR_VIEW_CHECK
    StreamView(SnapshotPtr snapshot, view::ViewStamp stamp)
        : snapshot_(std::move(snapshot)), stamp_(stamp) {}
    view::ViewStamp stamp_;
#else
    explicit StreamView(SnapshotPtr snapshot)
        : snapshot_(std::move(snapshot)) {}
#endif
    SnapshotPtr snapshot_;
};

/// Outcome of one applied batch.
struct BatchResult {
    /// Generation the batch produced (== base generation for a batch with
    /// no net effect, which publishes nothing).
    std::uint64_t generation = 0;
    count inserted = 0;   ///< net edge insertions
    count removed = 0;    ///< net edge removals
    count reweighted = 0; ///< net weight changes (remove+insert in batch)
    count ignored = 0;    ///< no-effect ops dropped in Permissive mode
    /// Batch that exactly undoes this one (GraphLog keeps these).
    EdgeBatch inverse;
    /// Endpoints of every net-changed edge, sorted ascending, deduplicated
    /// — the seed frontier for incremental re-detection.
    std::vector<node> touched;
};

/// Tuning of a durable (WAL + checkpoint) engine. See DESIGN.md
/// "Durability, recovery, and fault injection".
struct DurabilityOptions {
    /// fsync cadence of the WAL: 1 syncs every commit (strict
    /// durability); N > 1 group-commits, syncing every Nth record — a
    /// crash may lose up to the last N-1 acknowledged batches, never
    /// consistency.
    count groupCommit = 1;
    /// Write a checkpoint and rotate the log after this many WAL
    /// records (bounds recovery replay time and log length).
    count checkpointInterval = 256;
    /// Delete superseded checkpoints and segments after a successful
    /// rotation (keep them for forensics by setting this to false).
    bool pruneOnCheckpoint = true;
};

class StreamingGraph {
public:
    /// Freeze `initial` as generation 0. The adjacency is copied and
    /// sorted per row (the engine keeps every generation's rows sorted so
    /// edge lookups are binary searches); holes in the node-id space are
    /// preserved as empty rows.
    explicit StreamingGraph(const Graph& initial);

    /// Start from an already-frozen snapshot whose rows must be sorted
    /// ascending (e.g. from io::parallel ingestion, which sorts rows).
    explicit StreamingGraph(CsrGraph initial);

    /// Recovery constructor: rebuild the engine from durable directory
    /// `dir` — load the newest checkpoint that validates, replay the
    /// matching WAL tail in Strict mode (truncating a torn trailing
    /// record at the first CRC/length mismatch), then write a fresh
    /// checkpoint and stay durable in `dir`. Throws io::IoError when the
    /// directory holds no valid checkpoint.
    explicit StreamingGraph(const std::string& dir,
                            DurabilityOptions options = {});

    /// Named alias of the recovery constructor.
    static StreamingGraph recover(const std::string& dir,
                                  DurabilityOptions options = {});

    ~StreamingGraph();
    StreamingGraph(const StreamingGraph&) = delete;
    StreamingGraph& operator=(const StreamingGraph&) = delete;

    /// Make this engine durable in directory `dir` (created if absent):
    /// writes a checkpoint of the current generation, then opens a WAL
    /// segment that every subsequent apply() appends to — CRC-summed and
    /// fsync'd per DurabilityOptions — BEFORE the generation publishes.
    void enableDurability(const std::string& dir,
                          DurabilityOptions options = {});

    bool durable() const noexcept { return durable_ != nullptr; }

    /// Checkpoint the current generation and rotate the WAL now (also
    /// happens automatically every checkpointInterval records). Throws
    /// on I/O failure; the previous checkpoint + log stay intact.
    void checkpoint();

    /// True after a commit failed in a way that left the durable log
    /// state unknown (e.g. a rollback of a failed append itself failed,
    /// or a failure hit between the WAL fsync and the publish). A
    /// poisoned engine rejects every further apply(); recover() from the
    /// durable directory to resume from the last consistent state.
    bool failed() const noexcept { return poisoned_; }

    /// Why failed() is true (empty otherwise).
    const std::string& failureReason() const noexcept {
        return poisonReason_;
    }

    bool isWeighted() const noexcept { return weighted_; }

    /// Generation of the currently published snapshot.
    std::uint64_t generation() const;

    /// Pin the current generation: the returned snapshot stays valid and
    /// bit-identical for as long as the pointer is held, across any number
    /// of concurrent publishes. The reader-side primitive of snapshot
    /// isolation.
    SnapshotPtr pin() const;

    /// Borrowed view of the current generation — cheap, but must not be
    /// read after the next publish (see StreamView).
    StreamView current(GRAPR_VIEW_SITE_PARAM0) const;

    /// Apply one batch atomically: normalize against the current head,
    /// assemble generation N+1 in parallel, publish by pointer swap.
    /// Readers of generation N are never blocked and never observe a
    /// partial batch. Strict mode throws (and changes nothing) on
    /// duplicate inserts / deletes of missing edges; Permissive counts
    /// them in BatchResult::ignored. Thread-safe against concurrent
    /// apply() calls (serialized) and against all readers.
    BatchResult apply(const EdgeBatch& batch,
                      StreamApplyMode mode = StreamApplyMode::Strict
                          GRAPR_VIEW_SITE_PARAM);

private:
    void publish(SnapshotPtr next);
    void poison(const std::string& reason);
    void appendToWal(const EdgeBatch& net, std::uint64_t generation);
    void checkpointNow();   // requires writerMutex_ held and durable()
    void maybeCheckpoint(); // interval-driven, failures contained

    struct Durability; // wal writer + dir + options (stream_engine.cpp)
    std::unique_ptr<Durability> durable_;
    bool poisoned_ = false;
    std::string poisonReason_;

    bool weighted_ = false;
    mutable std::mutex headMutex_; ///< guards head_ (reads and the swap)
    std::mutex writerMutex_;       ///< serializes apply()
    SnapshotPtr head_;
#ifdef GRAPR_VIEW_CHECK
    /// Bumped on every publish; borrowed StreamViews assert against it.
    view::SourceStamp stamp_;
#endif
};

/// Binary-search lookup of edge {u, v} in a sorted-row CSR. Returns the
/// stored weight (1.0 for unweighted graphs), or nullopt if absent.
std::optional<edgeweight> csrEdgeWeight(const CsrGraph& g, node u, node v);

} // namespace grapr
