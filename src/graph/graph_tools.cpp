#include "graph/graph_tools.hpp"

#include <algorithm>
#include <limits>

#include "support/random.hpp"

namespace grapr::GraphTools {

DegreeStatistics degreeStatistics(const Graph& g) {
    DegreeStatistics stats;
    if (g.isEmpty()) return stats;
    count minimum = std::numeric_limits<count>::max();
    count maximum = 0;
    count total = 0;
    g.forNodes([&](node v) {
        const count d = g.degree(v);
        minimum = std::min(minimum, d);
        maximum = std::max(maximum, d);
        total += d;
    });
    stats.minimum = minimum;
    stats.maximum = maximum;
    stats.average =
        static_cast<double>(total) / static_cast<double>(g.numberOfNodes());
    return stats;
}

node maxDegreeNode(const Graph& g) {
    node best = none;
    count bestDegree = 0;
    g.forNodes([&](node v) {
        if (best == none || g.degree(v) > bestDegree) {
            best = v;
            bestDegree = g.degree(v);
        }
    });
    return best;
}

edgeweight totalVolume(const Graph& g) {
    edgeweight total = 0.0;
    g.forNodes([&](node v) { total += g.volume(v); });
    return total;
}

std::pair<Graph, std::vector<node>> compact(const Graph& g) {
    std::vector<node> map(g.upperNodeIdBound(), none);
    node next = 0;
    g.forNodes([&](node v) { map[v] = next++; });
    Graph result(next, g.isWeighted());
    g.forEdges([&](node u, node v, edgeweight w) {
        result.addEdge(map[u], map[v], w);
    });
    return {std::move(result), std::move(map)};
}

std::pair<Graph, std::vector<node>> inducedSubgraph(
    const Graph& g, const std::vector<node>& nodes) {
    std::vector<node> map(g.upperNodeIdBound(), none);
    for (index i = 0; i < nodes.size(); ++i) {
        require(g.hasNode(nodes[i]), "inducedSubgraph: node does not exist");
        require(map[nodes[i]] == none, "inducedSubgraph: duplicate node");
        map[nodes[i]] = static_cast<node>(i);
    }
    Graph sub(nodes.size(), g.isWeighted());
    for (node v : nodes) {
        g.forNeighborsOf(v, [&](node u, edgeweight w) {
            if (map[u] == none) return;
            // Each non-loop edge is seen from both endpoints; add once.
            if (u == v || map[v] < map[u]) sub.addEdge(map[v], map[u], w);
        });
    }
    return {std::move(sub), std::move(map)};
}

std::vector<node> randomNodeOrder(const Graph& g) {
    std::vector<node> order = g.nodeIds();
    Random::shuffle(order.begin(), order.end());
    return order;
}

std::vector<node> randomNodeOrder(const CsrGraph& g) {
    std::vector<node> order = g.nodeIds();
    Random::shuffle(order.begin(), order.end());
    return order;
}

node randomNode(const Graph& g) {
    if (g.isEmpty()) return none;
    // Rejection sampling over the id range; fine because removals are rare.
    for (;;) {
        const node v =
            static_cast<node>(Random::integer(g.upperNodeIdBound()));
        if (g.hasNode(v)) return v;
    }
}

void sortAdjacencies(Graph& g) { g.sortNeighborLists(); }

} // namespace grapr::GraphTools
