#include "graph/graph_builder.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include <omp.h>

namespace grapr {

GraphBuilder::GraphBuilder(count n, bool weighted)
    : n_(n), weighted_(weighted),
      perThread_(static_cast<std::size_t>(omp_get_max_threads())) {}

void GraphBuilder::addEdge(node u, node v, edgeweight w) {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    if (tid < perThread_.size()) {
        perThread_[tid].push_back({u, v, weighted_ ? w : 1.0});
        return;
    }
    // More threads than at construction time. The old fallback redirected
    // to buffer 0, racing against thread 0's own push_back; funnel the
    // excess through a dedicated lock-guarded buffer instead.
    const std::lock_guard<std::mutex> guard(overflowLock_);
    overflow_.push_back({u, v, weighted_ ? w : 1.0});
}

count GraphBuilder::bufferedEdges() const {
    count total = overflow_.size();
    for (const auto& buf : perThread_) total += buf.size();
    return total;
}

Graph GraphBuilder::build(bool dedup, bool sumWeights) {
    // Flatten the per-thread buffers (cheap: move the largest, copy rest).
    std::vector<Triple> triples;
    triples.reserve(bufferedEdges());
    for (auto& buf : perThread_) {
        triples.insert(triples.end(), buf.begin(), buf.end());
        buf.clear();
        buf.shrink_to_fit();
    }
    triples.insert(triples.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    overflow_.shrink_to_fit();

    // Normalize to u <= v so duplicates in either direction collide.
    // Validation is a flag reduction: exceptions must not cross the
    // parallel region boundary.
    const auto total = static_cast<std::int64_t>(triples.size());
    count outOfRange = 0;
#pragma omp parallel for default(none) shared(triples, total)                \
    schedule(static) reduction(+ : outOfRange)
    for (std::int64_t i = 0; i < total; ++i) {
        auto& t = triples[static_cast<std::size_t>(i)];
        if (t.u >= n_ || t.v >= n_) {
            ++outOfRange;
            continue;
        }
        if (t.u > t.v) std::swap(t.u, t.v);
    }
    require(outOfRange == 0, "GraphBuilder: node id out of range");

    if (dedup) {
        std::sort(triples.begin(), triples.end(),
                  [](const Triple& a, const Triple& b) {
                      return a.u != b.u ? a.u < b.u : a.v < b.v;
                  });
        std::size_t out = 0;
        for (std::size_t i = 0; i < triples.size(); ++i) {
            if (out > 0 && triples[out - 1].u == triples[i].u &&
                triples[out - 1].v == triples[i].v) {
                if (sumWeights) triples[out - 1].w += triples[i].w;
            } else {
                triples[out++] = triples[i];
            }
        }
        triples.resize(out);
    }

    // Pass 1: per-node slot counts (loops get one slot, non-loops one per
    // endpoint).
    std::vector<std::atomic<count>> slots(n_);
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    const auto kept = static_cast<std::int64_t>(triples.size());
#pragma omp parallel for default(none) shared(triples, slots, kept)          \
    schedule(static)
    for (std::int64_t i = 0; i < kept; ++i) {
        const auto& t = triples[static_cast<std::size_t>(i)];
        slots[t.u].fetch_add(1, std::memory_order_relaxed);
        if (t.u != t.v) slots[t.v].fetch_add(1, std::memory_order_relaxed);
    }

    // Pass 2: size the adjacency arrays.
    Graph g(n_, weighted_);
    const auto nodes = static_cast<std::int64_t>(n_);
#pragma omp parallel for default(none) shared(g, slots, nodes)               \
    schedule(static)
    for (std::int64_t v = 0; v < nodes; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        const count deg = slots[sv].load(std::memory_order_relaxed);
        // grapr:lint-allow(container-mutation): row sv is resized only by
        // the iteration that owns sv — rows are disjoint across threads.
        g.adjacency_[sv].resize(deg);
        // grapr:lint-allow(container-mutation): same disjoint-row argument.
        if (weighted_) g.weights_[sv].resize(deg);
        slots[sv].store(0, std::memory_order_relaxed); // reuse as cursor
    }

    // Pass 3: scatter triples into final positions.
    count loops = 0;
    long double weightTotal = 0.0L;
#pragma omp parallel for default(none) shared(g, triples, slots, kept)       \
    schedule(static) reduction(+ : loops, weightTotal)
    for (std::int64_t i = 0; i < kept; ++i) {
        const auto& t = triples[static_cast<std::size_t>(i)];
        const count iu = slots[t.u].fetch_add(1, std::memory_order_relaxed);
        g.adjacency_[t.u][iu] = t.v;
        if (weighted_) g.weights_[t.u][iu] = t.w;
        if (t.u != t.v) {
            const count iv = slots[t.v].fetch_add(1, std::memory_order_relaxed);
            g.adjacency_[t.v][iv] = t.u;
            if (weighted_) g.weights_[t.v][iv] = t.w;
        } else {
            ++loops;
        }
        weightTotal += t.w;
    }

    g.m_ = static_cast<count>(kept);
    g.selfLoops_ = loops;
    g.totalWeight_ = static_cast<edgeweight>(weightTotal);
    g.sorted_ = (kept == 0); // scatter order is thread-arbitrary
    return g;
}

} // namespace grapr
