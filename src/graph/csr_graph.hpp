#pragma once
// CsrGraph — the immutable "frozen" counterpart of Graph, laid out in
// Compressed Sparse Row form: one flat offsets[n+1] array into flat
// neighbors[] / weights[] arrays holding every adjacency entry of the
// graph back to back. This is the memory layout the paper's engineering
// thesis revolves around (§IV-A): the PLP/PLM hot loops are memory-bound
// neighborhood scans, and replacing Graph's per-node heap vectors with one
// contiguous arena removes a pointer chase per node, packs adjacency
// entries of consecutive nodes into shared cache lines, and lets the
// prefetcher stream the scan.
//
// A CsrGraph is a snapshot: it is built from a Graph (in parallel, via
// Parallel::prefixSum over the degree array) or assembled directly from
// CSR arrays (the parallel coarsening constructs its coarse graphs this
// way), and never mutated afterwards. Node volumes and the total edge
// weight are precomputed at freeze time, turning Graph::volume's O(deg)
// scan into an O(1) read inside the move phase. The iteration interface
// mirrors Graph (forNeighborsOf, parallelForNodes,
// balancedParallelForNodes, forEdges, parallelForEdges, ...) so the
// community-detection kernels are written once, generic over the layout.
//
// Adjacency order is preserved exactly by the freezing constructor, which
// makes single-threaded algorithm runs bit-identical between the two
// layouts (asserted by tests/test_csr.cpp).

#include <cstdint>
#include <utility>
#include <vector>

#include <omp.h>

#include "graph/graph.hpp"
#include "support/common.hpp"
#include "support/view_check.hpp"

namespace grapr {

class CsrGraph {
public:
    /// An empty frozen graph (0 nodes).
    CsrGraph() { offsets_.push_back(0); }

    /// Freeze g into CSR form. Parallel: degree scan + prefix sum +
    /// parallel scatter. Adjacency order of every node is preserved.
    /// GRAPR_VIEW_CHECK builds capture the caller as the freeze site and
    /// the source graph's mutation generation; every accessor then asserts
    /// the source has not mutated since (see support/view_check.hpp).
    explicit CsrGraph(const Graph& g GRAPR_VIEW_SITE_PARAM);

    /// Assemble from raw CSR arrays (all nodes exist, adjacency must be
    /// symmetric with self-loops stored once). Takes ownership of the
    /// arrays; derives edge counts, self-loops, total weight and per-node
    /// volumes in parallel. `weights` may be empty for an unweighted
    /// graph, otherwise must parallel `neighbors`.
    CsrGraph(std::vector<index> offsets, std::vector<node> neighbors,
             std::vector<edgeweight> weights, bool weighted);

    // --- size and flags ---------------------------------------------------

    count numberOfNodes() const noexcept { return n_; }
    count numberOfEdges() const noexcept { return m_; }
    count numberOfSelfLoops() const noexcept { return selfLoops_; }
    count upperNodeIdBound() const noexcept { return offsets_.size() - 1; }

    bool isWeighted() const noexcept { return weighted_; }
    bool isEmpty() const noexcept { return n_ == 0; }

    bool hasNode(node v) const noexcept {
        return v < exists_.size() && exists_[v];
    }

    // --- degrees, weights, volumes -----------------------------------------

    count degree(node v) const noexcept {
        GRAPR_VIEW_ASSERT(viewStamp_);
        return static_cast<count>(offsets_[v + 1] - offsets_[v]);
    }

    edgeweight weightedDegree(node v) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        if (!weighted_) return static_cast<edgeweight>(degree(v));
        edgeweight total = 0.0;
        for (index i = offsets_[v]; i < offsets_[v + 1]; ++i) {
            total += weights_[i];
        }
        return total;
    }

    /// vol(v), precomputed at freeze time (self-loop counted twice).
    edgeweight volume(node v) const noexcept {
        GRAPR_VIEW_ASSERT(viewStamp_);
        return volume_[v];
    }

    edgeweight totalEdgeWeight() const noexcept {
        GRAPR_VIEW_ASSERT(viewStamp_);
        return totalWeight_;
    }

    // --- neighborhood access -----------------------------------------------

    node getIthNeighbor(node v, index i) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        return neighbors_[offsets_[v] + i];
    }

    edgeweight getIthNeighborWeight(node v, index i) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        return weighted_ ? weights_[offsets_[v] + i] : 1.0;
    }

    // --- iteration (mirrors Graph) ------------------------------------------

    template <typename F>
    void forNodes(F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const count bound = upperNodeIdBound();
        for (node v = 0; v < bound; ++v) {
            if (exists_[v]) f(v);
        }
    }

    template <typename F>
    void parallelForNodes(F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const auto bound = static_cast<std::int64_t>(upperNodeIdBound());
#pragma omp parallel for default(none) shared(f, bound) schedule(static)
        for (std::int64_t v = 0; v < bound; ++v) {
            if (exists_[static_cast<node>(v)]) f(static_cast<node>(v));
        }
    }

    template <typename F>
    void balancedParallelForNodes(F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const auto bound = static_cast<std::int64_t>(upperNodeIdBound());
#pragma omp parallel for default(none) shared(f, bound) schedule(guided)
        for (std::int64_t v = 0; v < bound; ++v) {
            if (exists_[static_cast<node>(v)]) f(static_cast<node>(v));
        }
    }

    /// Apply f(v, w) to every neighbor of u (self-loop delivered once).
    template <typename F>
    void forNeighborsOf(node u, F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const index lo = offsets_[u];
        const index hi = offsets_[u + 1];
        if (weighted_) {
            for (index i = lo; i < hi; ++i) f(neighbors_[i], weights_[i]);
        } else {
            for (index i = lo; i < hi; ++i) f(neighbors_[i], 1.0);
        }
    }

    /// Apply f(u, v, w) to every undirected edge exactly once (v >= u).
    template <typename F>
    void forEdges(F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const count bound = upperNodeIdBound();
        for (node u = 0; u < bound; ++u) {
            for (index i = offsets_[u]; i < offsets_[u + 1]; ++i) {
                const node v = neighbors_[i];
                if (v >= u) f(u, v, weighted_ ? weights_[i] : 1.0);
            }
        }
    }

    template <typename F>
    void parallelForEdges(F&& f) const {
        GRAPR_VIEW_ASSERT(viewStamp_);
        const auto bound = static_cast<std::int64_t>(upperNodeIdBound());
#pragma omp parallel for default(none) shared(f, bound) schedule(guided)
        for (std::int64_t su = 0; su < bound; ++su) {
            const node u = static_cast<node>(su);
            for (index i = offsets_[u]; i < offsets_[u + 1]; ++i) {
                const node v = neighbors_[i];
                if (v >= u) f(u, v, weighted_ ? weights_[i] : 1.0);
            }
        }
    }

    // --- whole-graph helpers -----------------------------------------------

    /// List of existing node ids (ascending).
    std::vector<node> nodeIds() const;

    /// Thaw back into a mutable adjacency-list Graph (the API-boundary
    /// conversion; adjacency order is preserved, so freezing again is an
    /// exact round trip).
    Graph toGraph() const;

    /// Raw array access for benchmarks and tests.
    const std::vector<index>& offsets() const noexcept { return offsets_; }
    const std::vector<node>& neighborArray() const noexcept {
        return neighbors_;
    }
    const std::vector<edgeweight>& weightArray() const noexcept {
        return weights_;
    }

private:
    count n_ = 0;
    count m_ = 0;
    count selfLoops_ = 0;
    bool weighted_ = false;
    edgeweight totalWeight_ = 0.0;
    std::vector<index> offsets_;        // size upperNodeIdBound() + 1
    std::vector<node> neighbors_;       // size offsets_.back()
    std::vector<edgeweight> weights_;   // empty when unweighted
    std::vector<edgeweight> volume_;    // per-node, precomputed
    std::vector<std::uint8_t> exists_;  // holes survive freezing
#ifdef GRAPR_VIEW_CHECK
    // Freeze-time generation + freeze site; disengaged for views assembled
    // from raw arrays (no source graph to go stale against).
    view::ViewStamp viewStamp_;
#endif
};

} // namespace grapr
