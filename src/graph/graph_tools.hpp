#pragma once
// Whole-graph utilities: degree statistics, compaction of node ids after
// deletions, subgraph extraction, and randomized node orders (used by the
// sequential Louvain baseline, which — unlike PLM — explicitly randomizes
// its traversal order).

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "support/common.hpp"

namespace grapr::GraphTools {

struct DegreeStatistics {
    count minimum = 0;
    count maximum = 0;
    double average = 0.0;
};

/// Min / max / average degree over existing nodes.
DegreeStatistics degreeStatistics(const Graph& g);

/// Node with the highest degree (smallest id wins ties); none if empty.
node maxDegreeNode(const Graph& g);

/// Sum of node volumes = 2·ω(E) (checks out against totalEdgeWeight).
edgeweight totalVolume(const Graph& g);

/// Copy of g with node ids compacted to [0, n) (removed ids squeezed out).
/// Returns the compacted graph and the old-id -> new-id map (none for
/// removed nodes).
std::pair<Graph, std::vector<node>> compact(const Graph& g);

/// Node-induced subgraph; `nodes` must contain existing, distinct ids.
/// Returned graph has ids [0, nodes.size()) in the order given, plus the
/// mapping old -> new.
std::pair<Graph, std::vector<node>> inducedSubgraph(
    const Graph& g, const std::vector<node>& nodes);

/// Existing node ids in uniformly random order (thread-local RNG).
std::vector<node> randomNodeOrder(const Graph& g);
/// Frozen-graph overload: identical RNG consumption, so PLP's traversal
/// order matches across layouts.
std::vector<node> randomNodeOrder(const CsrGraph& g);

/// A uniformly random existing node; none if the graph is empty.
node randomNode(const Graph& g);

/// Sort every adjacency list ascending (improves locality for repeated
/// scans; invalidates positional indices).
void sortAdjacencies(Graph& g);

} // namespace grapr::GraphTools
