#include "graph/stream_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <system_error>
#include <tuple>
#include <unordered_map>
#include <utility>

#include <omp.h>

#include "graph/wal.hpp"
#include "io/binary_csr.hpp"
#include "io/io_error.hpp"
#include "structures/delta_csr.hpp"
#include "support/fault.hpp"
#include "support/parallel.hpp"

namespace grapr {

namespace {

/// Canonical key of undirected edge {u, v}: (min << 32) | max.
inline std::uint64_t edgeKey(node a, node b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Per-edge replay state while normalizing a batch: the edge's presence
/// and weight in the frozen base, and its evolving state as the batch's
/// ops are applied in order.
struct EdgeReplay {
    bool basePresent = false;
    edgeweight baseWeight = 0.0;
    bool present = false;
    edgeweight weight = 0.0;
};

/// A net half-edge effect, canonicalized (a <= b).
struct NetEdge {
    node a;
    node b;
    edgeweight w;
};

/// Re-wrap a frozen CsrGraph's arrays so the stored snapshot has a
/// disengaged view stamp (snapshot staleness is the engine's business,
/// tracked by its own generation cell — see stream_engine.hpp).
CsrGraph rewrapDisengaged(const CsrGraph& frozen, bool weighted) {
    return CsrGraph(frozen.offsets(), frozen.neighborArray(),
                    frozen.weightArray(), weighted);
}

void requireSortedRows(const CsrGraph& g) {
    const std::vector<index>& offsets = g.offsets();
    const std::vector<node>& neighbors = g.neighborArray();
    const auto bound = static_cast<std::int64_t>(g.upperNodeIdBound());
    std::atomic<bool> unsorted{false};
#pragma omp parallel for default(none)                                       \
    shared(offsets, neighbors, bound, unsorted) schedule(static)
    for (std::int64_t sv = 0; sv < bound; ++sv) {
        const auto v = static_cast<node>(sv);
        for (index i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
            if (neighbors[i - 1] >= neighbors[i]) {
                unsorted.store(true, std::memory_order_relaxed);
            }
        }
    }
    require(!unsorted.load(),
            "StreamingGraph: initial snapshot rows must be sorted "
            "strictly ascending (call Graph::sortNeighborLists first)");
}

// --- durable-directory layout ---------------------------------------------
// dir/checkpoint-<gen, zero-padded to 20 digits>.gcsr
// dir/wal-<gen>.gwal   (records replaying against checkpoint <gen>)

std::string paddedGeneration(std::uint64_t generation) {
    std::string digits = std::to_string(generation);
    return std::string(20 - digits.size(), '0') + digits;
}

std::string checkpointPath(const std::string& dir, std::uint64_t generation) {
    return dir + "/checkpoint-" + paddedGeneration(generation) + ".gcsr";
}

std::string walSegmentPath(const std::string& dir, std::uint64_t generation) {
    return dir + "/wal-" + paddedGeneration(generation) + ".gwal";
}

/// Parse "<prefix><digits><suffix>" file names; nullopt on anything else.
std::optional<std::uint64_t> parseTaggedName(const std::string& name,
                                             const std::string& prefix,
                                             const std::string& suffix) {
    if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
    if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
        return std::nullopt;
    }
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    std::uint64_t generation = 0;
    for (const char c : digits) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
            return std::nullopt;
        }
        generation = generation * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return generation;
}

/// Checkpoints in `dir`, newest generation first.
std::vector<std::pair<std::uint64_t, std::string>>
listCheckpoints(const std::string& dir) {
    namespace fs = std::filesystem;
    std::vector<std::pair<std::uint64_t, std::string>> out;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        throw io::IoError(dir, 0, 0,
                          "recover: cannot list durable directory: " +
                              ec.message());
    }
    for (const fs::directory_entry& entry : it) {
        const std::string name = entry.path().filename().string();
        if (const auto generation =
                parseTaggedName(name, "checkpoint-", ".gcsr")) {
            out.emplace_back(*generation, entry.path().string());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    return out;
}

/// Best-effort removal of everything superseded by checkpoint
/// `keepGeneration` (older checkpoints/segments, stray temp files).
void pruneDurableDir(const std::string& dir, std::uint64_t keepGeneration) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return;
    for (const fs::directory_entry& entry : it) {
        const std::string name = entry.path().filename().string();
        bool stale = name.size() > 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
        if (const auto g = parseTaggedName(name, "checkpoint-", ".gcsr")) {
            stale = *g < keepGeneration;
        } else if (const auto g = parseTaggedName(name, "wal-", ".gwal")) {
            stale = *g < keepGeneration;
        }
        if (stale) {
            std::error_code removeEc;
            fs::remove(entry.path(), removeEc);
        }
    }
}

} // namespace

/// Durable-mode state: the directory, the open WAL segment, and the
/// record count since the last checkpoint (drives rotation).
struct StreamingGraph::Durability {
    std::string dir;
    DurabilityOptions options;
    wal::WalWriter wal;
    count sinceCheckpoint = 0;
};

std::optional<edgeweight> csrEdgeWeight(const CsrGraph& g, node u, node v) {
    const count bound = g.upperNodeIdBound();
    if (u >= bound || v >= bound) return std::nullopt;
    if (g.degree(v) < g.degree(u)) std::swap(u, v); // search the short row
    const std::vector<index>& offsets = g.offsets();
    const std::vector<node>& neighbors = g.neighborArray();
    const auto first =
        neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    const auto last =
        neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    const auto it = std::lower_bound(first, last, v);
    if (it == last || *it != v) return std::nullopt;
    if (!g.isWeighted()) return 1.0;
    return g.weightArray()[static_cast<std::size_t>(it - neighbors.begin())];
}

StreamingGraph::StreamingGraph(const Graph& initial)
    : weighted_(initial.isWeighted()) {
    // Copy first: sorting is a mutation and must not invalidate views the
    // caller may have frozen from `initial`.
    Graph sorted = initial;
    sorted.sortNeighborLists();
    const CsrGraph frozen(sorted);
    auto snap = std::make_shared<StreamSnapshot>();
    snap->generation = 0;
    snap->graph = rewrapDisengaged(frozen, weighted_);
    head_ = std::move(snap);
}

StreamingGraph::StreamingGraph(CsrGraph initial)
    : weighted_(initial.isWeighted()) {
    requireSortedRows(initial);
    auto snap = std::make_shared<StreamSnapshot>();
    snap->generation = 0;
    snap->graph = rewrapDisengaged(initial, weighted_);
    head_ = std::move(snap);
}

StreamingGraph::StreamingGraph(const std::string& dir,
                               DurabilityOptions options) {
    // 1. Newest checkpoint that validates (older ones are the fallback
    //    when the newest is damaged — e.g. bit rot after a clean rename).
    const auto checkpoints = listCheckpoints(dir);
    if (checkpoints.empty()) {
        throw io::IoError(dir, 0, 0,
                          "recover: no checkpoint in durable directory");
    }
    std::optional<io::BinaryCsrSnapshot> loaded;
    std::string lastError;
    for (const auto& [generation, path] : checkpoints) {
        try {
            loaded = io::readBinaryCsr(path);
            break;
        } catch (const io::IoError& e) {
            lastError = e.what();
        }
    }
    if (!loaded) {
        throw io::IoError(dir, 0, 0,
                          "recover: no checkpoint validates (last error: " +
                              lastError + ")");
    }
    weighted_ = loaded->graph.isWeighted();
    requireSortedRows(loaded->graph);
    auto snap = std::make_shared<StreamSnapshot>();
    snap->generation = loaded->generation;
    snap->graph = rewrapDisengaged(loaded->graph, weighted_);
    head_ = std::move(snap);

    // 2. Replay the matching WAL tail in Strict mode. Records are net
    //    batches, so the replay reproduces each generation bit for bit;
    //    a torn trailing record (crash mid-append) is truncated at the
    //    first CRC/length mismatch, never misparsed. A segment whose
    //    HEADER is torn means the crash hit segment creation — nothing
    //    was ever acknowledged through it, so the checkpoint alone is
    //    the recovered state.
    const std::string segment = walSegmentPath(dir, loaded->generation);
    std::error_code existsEc;
    if (std::filesystem::exists(segment, existsEc)) {
        wal::ReplayResult tail;
        bool headerValid = true;
        try {
            tail = wal::replay(segment, /*truncateTorn=*/true);
        } catch (const io::IoError&) {
            headerValid = false;
        }
        if (headerValid && !tail.records.empty()) {
            require(tail.baseGeneration == loaded->generation,
                    "recover: WAL segment does not match its checkpoint "
                    "generation");
            for (const wal::WalRecord& record : tail.records) {
                const BatchResult replayed =
                    apply(record.batch, StreamApplyMode::Strict);
                require(replayed.generation == record.generation,
                        "recover: WAL replay diverged from the logged "
                        "generation sequence");
            }
        }
    }

    // 3. Make the recovered state the new durable base: fresh checkpoint,
    //    fresh segment, superseded files pruned. Bounds the next
    //    recovery's replay and makes recover() idempotent.
    enableDurability(dir, options);
}

StreamingGraph StreamingGraph::recover(const std::string& dir,
                                       DurabilityOptions options) {
    return StreamingGraph(dir, options);
}

StreamingGraph::~StreamingGraph() = default;

void StreamingGraph::enableDurability(const std::string& dir,
                                      DurabilityOptions options) {
    std::lock_guard<std::mutex> writerLock(writerMutex_);
    require(durable_ == nullptr,
            "StreamingGraph::enableDurability: already durable");
    if (poisoned_) {
        fail("StreamingGraph::enableDurability: engine is poisoned (" +
             poisonReason_ + ")");
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        throw io::IoError(dir, 0, 0,
                          "cannot create durable directory: " + ec.message());
    }
    auto durable = std::make_unique<Durability>();
    durable->dir = dir;
    durable->options = options;
    if (durable->options.groupCommit == 0) durable->options.groupCommit = 1;
    if (durable->options.checkpointInterval == 0) {
        durable->options.checkpointInterval = 1;
    }
    durable_ = std::move(durable);
    try {
        checkpointNow();
    } catch (...) {
        durable_.reset(); // never half-durable: the caller may retry
        throw;
    }
}

void StreamingGraph::checkpoint() {
    std::lock_guard<std::mutex> writerLock(writerMutex_);
    require(durable_ != nullptr,
            "StreamingGraph::checkpoint: enable durability first");
    if (poisoned_) {
        fail("StreamingGraph::checkpoint: engine is poisoned (" +
             poisonReason_ + ")");
    }
    checkpointNow();
}

void StreamingGraph::checkpointNow() {
    const SnapshotPtr snap = pin();
    io::writeBinaryCsr(snap->graph, snap->generation,
                       checkpointPath(durable_->dir, snap->generation));
    // Rotate only after the checkpoint is durable; if opening the new
    // segment fails, the old writer (and the old checkpoint) are intact.
    wal::WalWriter next(walSegmentPath(durable_->dir, snap->generation),
                        snap->generation, durable_->options.groupCommit);
    durable_->wal = std::move(next); // closes the superseded segment
    durable_->sinceCheckpoint = 0;
    if (durable_->options.pruneOnCheckpoint) {
        pruneDurableDir(durable_->dir, snap->generation);
    }
}

void StreamingGraph::maybeCheckpoint() {
    if (durable_ == nullptr ||
        durable_->sinceCheckpoint < durable_->options.checkpointInterval) {
        return;
    }
    try {
        checkpointNow();
    } catch (const std::exception&) {
        // Contained: the batch that triggered rotation is already
        // committed AND logged — the previous checkpoint plus the full
        // segment still recover it. Rotation is retried on the next
        // apply() (sinceCheckpoint keeps counting). Explicit
        // checkpoint() calls do rethrow.
    }
}

void StreamingGraph::poison(const std::string& reason) {
    poisoned_ = true;
    poisonReason_ = reason;
}

void StreamingGraph::appendToWal(const EdgeBatch& net,
                                 std::uint64_t generation) {
    try {
        durable_->wal.append(net, generation);
    } catch (...) {
        if (durable_->wal.poisoned()) {
            poison("WAL rollback failed; the on-disk log tail is unknown");
        }
        throw;
    }
    ++durable_->sinceCheckpoint;
}

std::uint64_t StreamingGraph::generation() const {
    return pin()->generation;
}

SnapshotPtr StreamingGraph::pin() const {
    std::lock_guard<std::mutex> lock(headMutex_);
    return head_;
}

StreamView StreamingGraph::current(GRAPR_VIEW_SITE_ARG0) const {
#ifdef GRAPR_VIEW_CHECK
    return StreamView(pin(), view::ViewStamp(stamp_, graprViewSite_));
#else
    return StreamView(pin());
#endif
}

void StreamingGraph::publish(SnapshotPtr next) {
    std::lock_guard<std::mutex> lock(headMutex_);
    head_ = std::move(next);
}

BatchResult StreamingGraph::apply(const EdgeBatch& batch,
                                  StreamApplyMode mode GRAPR_VIEW_SITE_ARG) {
    std::lock_guard<std::mutex> writerLock(writerMutex_);
    if (poisoned_) {
        fail("StreamingGraph::apply: engine is poisoned after a failed "
             "commit (" + poisonReason_ + "); recover() from the durable "
             "directory or start a fresh engine");
    }
    const SnapshotPtr base = pin();
    const CsrGraph& g = base->graph;
    const count oldBound = g.upperNodeIdBound();

    BatchResult result;
    result.generation = base->generation;

    // --- replay the batch in order against the frozen base ---------------
    // Per-edge state lets remove-then-insert in one batch express a
    // reweight, and makes Strict-mode validity depend on the evolving
    // batch state, not just the base graph.
    std::unordered_map<std::uint64_t, EdgeReplay> replay;
    replay.reserve(batch.size());
    for (const EdgeOp& op : batch.ops()) {
        require(op.u != none && op.v != none,
                "StreamingGraph::apply: op names the `none` sentinel node");
        const node a = std::min(op.u, op.v);
        const node b = std::max(op.u, op.v);
        auto [it, fresh] = replay.try_emplace(edgeKey(a, b));
        EdgeReplay& s = it->second;
        if (fresh) {
            const std::optional<edgeweight> w = csrEdgeWeight(g, a, b);
            s.basePresent = w.has_value();
            s.baseWeight = w.value_or(0.0);
            s.present = s.basePresent;
            s.weight = s.baseWeight;
        }
        if (op.kind == EdgeOp::Kind::Insert) {
            if (s.present) {
                require(mode == StreamApplyMode::Permissive,
                        "StreamingGraph::apply: insert of an existing edge "
                        "(Strict mode)");
                ++result.ignored;
            } else {
                s.present = true;
                s.weight = weighted_ ? op.w : 1.0;
            }
        } else {
            if (!s.present) {
                require(mode == StreamApplyMode::Permissive,
                        "StreamingGraph::apply: delete of a missing edge "
                        "(Strict mode)");
                ++result.ignored;
            } else {
                s.present = false;
            }
        }
    }

    // --- reduce to net per-edge effects, deterministically ordered -------
    std::vector<NetEdge> netIns; // inserts (incl. the insert half of a
    std::vector<NetEdge> netDel; // reweight); w of a delete = base weight
    for (const auto& [key, s] : replay) {
        const auto a = static_cast<node>(key >> 32);
        const auto b = static_cast<node>(key & 0xffffffffu);
        if (s.basePresent && !s.present) {
            netDel.push_back({a, b, s.baseWeight});
            ++result.removed;
        } else if (!s.basePresent && s.present) {
            netIns.push_back({a, b, s.weight});
            ++result.inserted;
        } else if (s.basePresent && s.weight != s.baseWeight) {
            netDel.push_back({a, b, s.baseWeight});
            netIns.push_back({a, b, s.weight});
            ++result.reweighted;
        }
    }
    const auto byEndpoints = [](const NetEdge& x, const NetEdge& y) {
        return std::tie(x.a, x.b) < std::tie(y.a, y.b);
    };
    std::sort(netIns.begin(), netIns.end(), byEndpoints);
    std::sort(netDel.begin(), netDel.end(), byEndpoints);

    if (netIns.empty() && netDel.empty()) {
        return result; // no net effect: nothing published, views stay valid
    }

    // Inverse batch: removes of the net inserts first, then re-inserts of
    // the net deletes at their observed base weight. Removes go first so a
    // reweighted edge is strictly-valid to undo (remove new, insert old).
    for (const NetEdge& e : netIns) result.inverse.remove(e.a, e.b);
    for (const NetEdge& e : netDel) result.inverse.insert(e.a, e.b, e.w);

    // Touched frontier + node-id bound of the next generation.
    count newBound = oldBound;
    for (const std::vector<NetEdge>* list : {&netIns, &netDel}) {
        for (const NetEdge& e : *list) {
            result.touched.push_back(e.a);
            result.touched.push_back(e.b);
            newBound = std::max(newBound, static_cast<count>(e.b) + 1);
        }
    }
    std::sort(result.touched.begin(), result.touched.end());
    result.touched.erase(
        std::unique(result.touched.begin(), result.touched.end()),
        result.touched.end());

    // --- scatter the net effects into per-row delta lists -----------------
    CsrDelta delta;
    delta.newBound = newBound;
    std::vector<count> insCnt(newBound, 0);
    std::vector<count> delCnt(newBound, 0);
    for (const NetEdge& e : netIns) {
        ++insCnt[e.a];
        if (e.b != e.a) ++insCnt[e.b];
    }
    for (const NetEdge& e : netDel) {
        ++delCnt[e.a];
        if (e.b != e.a) ++delCnt[e.b];
    }
    const count insTotal = Parallel::prefixSum(insCnt);
    const count delTotal = Parallel::prefixSum(delCnt);
    delta.insOffsets.assign(newBound + 1, 0);
    delta.delOffsets.assign(newBound + 1, 0);
    for (node v = 0; v < newBound; ++v) {
        delta.insOffsets[v] = insCnt[v];
        delta.delOffsets[v] = delCnt[v];
    }
    delta.insOffsets[newBound] = insTotal;
    delta.delOffsets[newBound] = delTotal;
    delta.insTargets.resize(insTotal);
    delta.insWeights.resize(weighted_ ? insTotal : 0);
    delta.delTargets.resize(delTotal);

    std::vector<index> insCursor(delta.insOffsets.begin(),
                                 delta.insOffsets.end() - 1);
    std::vector<index> delCursor(delta.delOffsets.begin(),
                                 delta.delOffsets.end() - 1);
    const auto scatterIns = [&](node row, node target, edgeweight w) {
        const index pos = insCursor[row]++;
        delta.insTargets[pos] = target;
        if (weighted_) delta.insWeights[pos] = w;
    };
    for (const NetEdge& e : netIns) {
        scatterIns(e.a, e.b, e.w);
        if (e.b != e.a) scatterIns(e.b, e.a, e.w);
    }
    for (const NetEdge& e : netDel) {
        delta.delTargets[delCursor[e.a]++] = e.b;
        if (e.b != e.a) delta.delTargets[delCursor[e.b]++] = e.a;
    }
    // Net edges were scattered in (a, b) order, so row-a slices are already
    // sorted; the b-side back-edges are not. Sort every touched row slice.
    for (const node v : result.touched) {
        const auto insLo = static_cast<std::ptrdiff_t>(delta.insOffsets[v]);
        const auto insHi =
            static_cast<std::ptrdiff_t>(delta.insOffsets[v + 1]);
        if (weighted_) {
            // Keep targets and weights aligned: sort an index permutation.
            std::vector<std::pair<node, edgeweight>> row;
            row.reserve(static_cast<std::size_t>(insHi - insLo));
            for (std::ptrdiff_t i = insLo; i < insHi; ++i) {
                row.emplace_back(delta.insTargets[static_cast<index>(i)],
                                 delta.insWeights[static_cast<index>(i)]);
            }
            std::sort(row.begin(), row.end());
            for (std::ptrdiff_t i = insLo; i < insHi; ++i) {
                const auto& [t, w] = row[static_cast<std::size_t>(i - insLo)];
                delta.insTargets[static_cast<index>(i)] = t;
                delta.insWeights[static_cast<index>(i)] = w;
            }
        } else {
            std::sort(delta.insTargets.begin() + insLo,
                      delta.insTargets.begin() + insHi);
        }
        std::sort(delta.delTargets.begin() +
                      static_cast<std::ptrdiff_t>(delta.delOffsets[v]),
                  delta.delTargets.begin() +
                      static_cast<std::ptrdiff_t>(delta.delOffsets[v + 1]));
    }

    // --- assemble generation N+1 in parallel, then log, then publish ------
    // Readers keep serving `base` throughout: applyDelta only reads it.
    CsrGraph next = applyDelta(g, delta, weighted_);
    auto snap = std::make_shared<StreamSnapshot>();
    snap->generation = base->generation + 1;
    snap->graph = std::move(next);
    result.generation = snap->generation;

    if (durable_ != nullptr) {
        // WAL-first: the NET batch (removes, then inserts — replayable
        // in Strict mode against the base snapshot) must be durable
        // before the generation becomes visible. A failed append rolls
        // the log back and leaves the engine on `base` (strong
        // guarantee); a failed rollback poisons the engine instead.
        EdgeBatch net;
        for (const NetEdge& e : netDel) net.remove(e.a, e.b);
        for (const NetEdge& e : netIns) net.insert(e.a, e.b, e.w);
        appendToWal(net, snap->generation);
    }
    try {
        GRAPR_FAULT_POINT("engine.publish");
        publish(std::move(snap));
    } catch (...) {
        // Past the WAL fsync the commit may no longer fail softly: the
        // log has the record, memory does not. Poison; recovery replays
        // the logged batch into the consistent state.
        poison("commit interrupted between WAL append and publish");
        throw;
    }
    // Borrowed views of generation N are stale from this point on; the
    // bump records the publish site for the GRAPR_VIEW_CHECK report.
    GRAPR_VIEW_BUMP(stamp_);
    maybeCheckpoint();
    return result;
}

// --- GraphLog ------------------------------------------------------------

BatchResult GraphLog::commit(StreamApplyMode mode) {
    BatchResult result = graph_->apply(pending_, mode);
    pending_.clear();
    undo_.push_back(result.inverse);
    return result;
}

BatchResult GraphLog::apply(const EdgeBatch& batch, StreamApplyMode mode) {
    BatchResult result = graph_->apply(batch, mode);
    undo_.push_back(result.inverse);
    return result;
}

BatchResult GraphLog::undo() {
    require(!undo_.empty(), "GraphLog::undo: nothing to undo");
    const EdgeBatch inverse = std::move(undo_.back());
    undo_.pop_back();
    return graph_->apply(inverse, StreamApplyMode::Strict);
}

} // namespace grapr
