#include "graph/csr_graph.hpp"

#include "support/parallel.hpp"
#include "support/race_check.hpp"

namespace grapr {

namespace {

/// vol(v) over one CSR row, replicating Graph::volume's evaluation order
/// exactly (sum of all incident weights, then the first self-loop's weight
/// again) so frozen volumes are bit-identical to the mutable path.
edgeweight rowVolume(node v, const std::vector<node>& neighbors,
                     const std::vector<edgeweight>* weights, index lo,
                     index hi) {
    edgeweight total = 0.0;
    edgeweight loopWeight = 0.0;
    bool sawLoop = false;
    for (index i = lo; i < hi; ++i) {
        const edgeweight w = weights ? (*weights)[i] : 1.0;
        total += w;
        if (!sawLoop && neighbors[i] == v) {
            loopWeight = w;
            sawLoop = true;
        }
    }
    return total + loopWeight;
}

} // namespace

CsrGraph::CsrGraph(const Graph& g GRAPR_VIEW_SITE_ARG)
    : n_(g.numberOfNodes()),
      m_(g.numberOfEdges()),
      selfLoops_(g.numberOfSelfLoops()),
      weighted_(g.isWeighted()),
      totalWeight_(g.totalEdgeWeight()) {
#ifdef GRAPR_VIEW_CHECK
    viewStamp_ = view::ViewStamp(g.viewSourceStamp_, graprViewSite_);
#endif
    const count bound = g.upperNodeIdBound();

    // Degree histogram -> exclusive prefix sum -> row offsets. Removed
    // nodes keep an empty row, so holes in the id space survive freezing.
    std::vector<count> degrees(bound, 0);
    exists_.assign(bound, 0);
    g.parallelForNodes([&](node v) {
        exists_[v] = 1;
        degrees[v] = g.degree(v);
    });
    const count entries = Parallel::prefixSum(degrees);

    offsets_.resize(bound + 1);
    const auto sbound = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none) shared(degrees, sbound)               \
    schedule(static)
    for (std::int64_t v = 0; v < sbound; ++v) {
        offsets_[static_cast<std::size_t>(v)] =
            static_cast<index>(degrees[static_cast<std::size_t>(v)]);
    }
    offsets_[bound] = static_cast<index>(entries);

    neighbors_.resize(entries);
    if (weighted_) weights_.resize(entries);
    volume_.assign(bound, 0.0);

#ifdef GRAPR_RACE_CHECK
    // One shadow cell per CSR row: the scatter must write each row from
    // exactly one thread.
    race::ShadowCells rowShadow(bound);
    GRAPR_RACE_PHASE("CsrGraph.freeze");
#endif
    // Scatter every adjacency list into its slice, preserving order.
    g.parallelForNodes([&](node v) {
        GRAPR_RACE_WRITE(rowShadow, v);
        const index lo = offsets_[v];
        const auto& adj = g.neighbors(v);
        for (index i = 0; i < adj.size(); ++i) {
            neighbors_[lo + i] = adj[i];
            if (weighted_) weights_[lo + i] = g.getIthNeighborWeight(v, i);
        }
        volume_[v] = rowVolume(v, neighbors_, weighted_ ? &weights_ : nullptr,
                               lo, offsets_[v + 1]);
    });
}

CsrGraph::CsrGraph(std::vector<index> offsets, std::vector<node> neighbors,
                   std::vector<edgeweight> weights, bool weighted)
    : weighted_(weighted),
      offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      weights_(std::move(weights)) {
    require(!offsets_.empty(), "CsrGraph: offsets array must have n+1 entries");
    require(offsets_.back() == neighbors_.size(),
            "CsrGraph: offsets/neighbors size mismatch");
    require(!weighted_ || weights_.size() == neighbors_.size(),
            "CsrGraph: weights/neighbors size mismatch");

    const count bound = offsets_.size() - 1;
    n_ = bound;
    exists_.assign(bound, 1);
    volume_.assign(bound, 0.0);

    // Derive loops, edge count and total weight: every non-loop entry
    // appears twice (once per endpoint), every self-loop once.
    count loops = 0;
    long double weightTwice = 0.0L; // non-loop weight, seen from both ends
    long double loopWeight = 0.0L;
    const auto sbound = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none) shared(sbound) schedule(guided)       \
    reduction(+ : loops, weightTwice, loopWeight)
    for (std::int64_t sv = 0; sv < sbound; ++sv) {
        const node v = static_cast<node>(sv);
        for (index i = offsets_[v]; i < offsets_[v + 1]; ++i) {
            const edgeweight w = weighted_ ? weights_[i] : 1.0;
            if (neighbors_[i] == v) {
                ++loops;
                loopWeight += w;
            } else {
                weightTwice += w;
            }
        }
        volume_[v] = rowVolume(v, neighbors_, weighted_ ? &weights_ : nullptr,
                               offsets_[v], offsets_[v + 1]);
    }
    selfLoops_ = loops;
    const count nonLoopEntries = neighbors_.size() - loops;
    require(nonLoopEntries % 2 == 0,
            "CsrGraph: asymmetric adjacency (odd non-loop entry count)");
    m_ = nonLoopEntries / 2 + loops;
    totalWeight_ =
        static_cast<edgeweight>(weightTwice / 2.0L + loopWeight);
}

std::vector<node> CsrGraph::nodeIds() const {
    GRAPR_VIEW_ASSERT(viewStamp_);
    std::vector<node> ids;
    ids.reserve(n_);
    forNodes([&](node v) { ids.push_back(v); });
    return ids;
}

Graph CsrGraph::toGraph() const {
    GRAPR_VIEW_ASSERT(viewStamp_);
    const count bound = upperNodeIdBound();
    Graph g(bound, weighted_);
    // Write the rows directly (CsrGraph is a friend of Graph, like
    // GraphBuilder) instead of replaying addEdge calls: positional
    // assembly preserves adjacency order bit-exactly, so freezing the
    // result again is an identity round trip.
    const auto sbound = static_cast<std::int64_t>(bound);
#ifdef GRAPR_RACE_CHECK
    race::ShadowCells rowShadow(bound);
    GRAPR_RACE_PHASE("CsrGraph.thaw");
#endif
    // Captured by the lambda (not a pragma clause) so the shadow exists
    // only under GRAPR_RACE_CHECK without forking the pragma.
    auto writeRow = [&](node v) {
        GRAPR_RACE_WRITE(rowShadow, v);
        const index lo = offsets_[v];
        const index hi = offsets_[v + 1];
        // Row v is written only by the iteration that owns v — rows are
        // disjoint across threads (the row shadow above enforces this).
        g.adjacency_[v].assign(neighbors_.begin() + static_cast<std::ptrdiff_t>(lo),
                               neighbors_.begin() + static_cast<std::ptrdiff_t>(hi));
        if (weighted_) {
            g.weights_[v].assign(
                weights_.begin() + static_cast<std::ptrdiff_t>(lo),
                weights_.begin() + static_cast<std::ptrdiff_t>(hi));
        }
        g.exists_[v] = exists_[v];
    };
#pragma omp parallel for default(none) shared(writeRow, sbound)              \
    schedule(guided)
    for (std::int64_t sv = 0; sv < sbound; ++sv) {
        writeRow(static_cast<node>(sv));
    }
    g.n_ = n_;
    g.m_ = m_;
    g.selfLoops_ = selfLoops_;
    g.totalWeight_ = totalWeight_;
    g.sorted_ = false;
    return g;
}

} // namespace grapr
