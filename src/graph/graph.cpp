#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>

namespace grapr {

namespace {
constexpr index npos = std::numeric_limits<index>::max();
} // namespace

Graph::Graph(count n, bool weighted)
    : n_(n),
      weighted_(weighted),
      adjacency_(n),
      weights_(weighted ? n : 0),
      exists_(n, 1) {}

node Graph::addNode(GRAPR_VIEW_SITE_ARG0) {
    GRAPR_VIEW_BUMP(viewSourceStamp_);
    const node v = static_cast<node>(adjacency_.size());
    adjacency_.emplace_back();
    if (weighted_) weights_.emplace_back();
    exists_.push_back(1);
    ++n_;
    return v;
}

void Graph::removeNode(node v GRAPR_VIEW_SITE_ARG) {
    require(hasNode(v), "removeNode: node does not exist");
    // Remove edges incident to v; iterate over a copy because removeEdge
    // mutates adjacency_[v].
    std::vector<node> incident = adjacency_[v];
    // A self-loop appears once in incident; non-loop neighbors once each.
    for (node u : incident) {
        // Multi-edges: removeEdge removes one instance per call, and
        // `incident` lists one entry per instance, so all go.
        removeEdge(v, u GRAPR_VIEW_SITE_FWD);
    }
    GRAPR_VIEW_BUMP(viewSourceStamp_);
    exists_[v] = 0;
    --n_;
}

void Graph::addEdge(node u, node v, edgeweight w GRAPR_VIEW_SITE_ARG) {
    require(hasNode(u) && hasNode(v), "addEdge: node does not exist");
    GRAPR_VIEW_BUMP(viewSourceStamp_);
    if (!weighted_) w = 1.0;
    sorted_ = false;
    adjacency_[u].push_back(v);
    if (weighted_) weights_[u].push_back(w);
    if (u != v) {
        adjacency_[v].push_back(u);
        if (weighted_) weights_[v].push_back(w);
    } else {
        ++selfLoops_;
    }
    ++m_;
    totalWeight_ += w;
}

bool Graph::addEdgeChecked(node u, node v, edgeweight w GRAPR_VIEW_SITE_ARG) {
    if (hasEdge(u, v)) return false;
    addEdge(u, v, w GRAPR_VIEW_SITE_FWD);
    return true;
}

index Graph::indexOfNeighbor(node u, node v) const {
    const auto& adj = adjacency_[u];
    if (sorted_) {
        const auto it = std::lower_bound(adj.begin(), adj.end(), v);
        if (it != adj.end() && *it == v) {
            return static_cast<index>(it - adj.begin());
        }
        return npos;
    }
    for (index i = 0; i < adj.size(); ++i) {
        if (adj[i] == v) return i;
    }
    return npos;
}

void Graph::removeEdge(node u, node v GRAPR_VIEW_SITE_ARG) {
    const index iu = indexOfNeighbor(u, v);
    require(iu != npos, "removeEdge: edge does not exist");
    const edgeweight w = weighted_ ? weights_[u][iu] : 1.0;

    GRAPR_VIEW_BUMP(viewSourceStamp_);
    sorted_ = false; // swap-with-back removal breaks the order below
    auto dropAt = [this](node x, index i) {
        auto& adj = adjacency_[x];
        adj[i] = adj.back();
        adj.pop_back();
        if (weighted_) {
            auto& wts = weights_[x];
            wts[i] = wts.back();
            wts.pop_back();
        }
    };

    dropAt(u, iu);
    if (u != v) {
        const index iv = indexOfNeighbor(v, u);
        require(iv != npos, "removeEdge: asymmetric adjacency");
        dropAt(v, iv);
    } else {
        --selfLoops_;
    }
    --m_;
    totalWeight_ -= w;
}

bool Graph::hasEdge(node u, node v) const {
    if (!hasNode(u) || !hasNode(v)) return false;
    if (degree(u) > degree(v)) std::swap(u, v);
    return indexOfNeighbor(u, v) != npos;
}

void Graph::increaseWeight(node u, node v, edgeweight delta
                               GRAPR_VIEW_SITE_ARG) {
    require(weighted_, "increaseWeight: graph is unweighted");
    const index iu = indexOfNeighbor(u, v);
    if (iu == npos) {
        addEdge(u, v, delta GRAPR_VIEW_SITE_FWD);
        return;
    }
    GRAPR_VIEW_BUMP(viewSourceStamp_);
    weights_[u][iu] += delta;
    if (u != v) {
        const index iv = indexOfNeighbor(v, u);
        weights_[v][iv] += delta;
    }
    totalWeight_ += delta;
}

edgeweight Graph::weight(node u, node v) const {
    const index iu = indexOfNeighbor(u, v);
    if (iu == npos) return 0.0;
    return weighted_ ? weights_[u][iu] : 1.0;
}

edgeweight Graph::weightedDegree(node v) const {
    if (!weighted_) return static_cast<edgeweight>(degree(v));
    edgeweight total = 0.0;
    for (edgeweight w : weights_[v]) total += w;
    return total;
}

edgeweight Graph::volume(node v) const {
    return weightedDegree(v) + weight(v, v);
}

std::vector<node> Graph::nodeIds() const {
    std::vector<node> ids;
    ids.reserve(n_);
    forNodes([&](node v) { ids.push_back(v); });
    return ids;
}

Graph Graph::toWeighted() const {
    if (weighted_) return *this;
    Graph result(upperNodeIdBound(), true);
    result.n_ = n_;
    result.exists_ = exists_;
    forEdges([&](node u, node v, edgeweight w) { result.addEdge(u, v, w); });
    return result;
}

void Graph::reserveNeighbors(node v, count capacity) {
    adjacency_[v].reserve(capacity);
    if (weighted_) weights_[v].reserve(capacity);
}

void Graph::sortNeighborLists(GRAPR_VIEW_SITE_ARG0) {
    // A mutation for the view contract: frozen views keep pre-sort
    // adjacency order, so positional reads would silently diverge.
    GRAPR_VIEW_BUMP(viewSourceStamp_);
    const auto bound = static_cast<std::int64_t>(adjacency_.size());
#pragma omp parallel for default(none) shared(bound) schedule(guided)
    for (std::int64_t sv = 0; sv < bound; ++sv) {
        const auto v = static_cast<std::size_t>(sv);
        auto& adj = adjacency_[v];
        if (!weighted_) {
            std::sort(adj.begin(), adj.end());
            continue;
        }
        auto& wts = weights_[v];
        std::vector<index> order(adj.size());
        for (index i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](index a, index b) { return adj[a] < adj[b]; });
        std::vector<node> newAdj(adj.size());
        std::vector<edgeweight> newWts(wts.size());
        for (index i = 0; i < order.size(); ++i) {
            newAdj[i] = adj[order[i]];
            newWts[i] = wts[order[i]];
        }
        adj = std::move(newAdj);
        wts = std::move(newWts);
    }
    sorted_ = true;
}

bool Graph::structurallyEquals(const Graph& other) const {
    if (numberOfNodes() != other.numberOfNodes()) return false;
    if (numberOfEdges() != other.numberOfEdges()) return false;
    if (upperNodeIdBound() != other.upperNodeIdBound()) return false;
    for (node v = 0; v < upperNodeIdBound(); ++v) {
        if (hasNode(v) != other.hasNode(v)) return false;
        if (!hasNode(v)) continue;
        if (degree(v) != other.degree(v)) return false;
        // Compare sorted (neighbor, weight) sequences.
        std::vector<std::pair<node, edgeweight>> a, b;
        forNeighborsOf(v, [&](node u, edgeweight w) { a.emplace_back(u, w); });
        other.forNeighborsOf(v,
                             [&](node u, edgeweight w) { b.emplace_back(u, w); });
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        for (index i = 0; i < a.size(); ++i) {
            if (a[i].first != b[i].first) return false;
            if (std::abs(a[i].second - b[i].second) > 1e-9) return false;
        }
    }
    return true;
}

void Graph::checkConsistency() const {
    count nodes = 0;
    count halfEdges = 0;
    count loops = 0;
    long double weightTwice = 0.0L; // non-loop edges counted twice
    long double loopWeight = 0.0L;
    for (node v = 0; v < adjacency_.size(); ++v) {
        if (!exists_[v]) {
            require(adjacency_[v].empty(),
                    "consistency: removed node has adjacency entries");
            continue;
        }
        ++nodes;
        if (weighted_) {
            require(adjacency_[v].size() == weights_[v].size(),
                    "consistency: weight array size mismatch");
        }
        for (index i = 0; i < adjacency_[v].size(); ++i) {
            const node u = adjacency_[v][i];
            require(hasNode(u), "consistency: edge to removed node");
            const edgeweight w = weighted_ ? weights_[v][i] : 1.0;
            if (u == v) {
                ++loops;
                loopWeight += w;
                ++halfEdges; // loop stored once
            } else {
                require(hasEdge(u, v), "consistency: asymmetric edge");
                weightTwice += w;
                ++halfEdges;
            }
        }
    }
    require(nodes == n_, "consistency: node count mismatch");
    require(loops == selfLoops_, "consistency: self-loop count mismatch");
    const count expectedHalf = 2 * (m_ - selfLoops_) + selfLoops_;
    require(halfEdges == expectedHalf, "consistency: edge count mismatch");
    const long double expectedWeight = weightTwice / 2.0L + loopWeight;
    require(std::abs(static_cast<double>(expectedWeight) - totalWeight_) <
                1e-6 * (1.0 + std::abs(totalWeight_)),
            "consistency: total weight mismatch");
}

} // namespace grapr
