#pragma once
// GraphLog — the batch-update front door of the streaming engine
// (DESIGN.md "Streaming updates and snapshot isolation").
//
// Mutations arrive as *batches* of edge insertions/deletions (EdgeBatch),
// not as single-edge calls: the dynamic-network strategies this engine
// implements (Staudt & Meyerhenke, arXiv:1304.4453) amortize the cost of
// re-freezing and re-detection over a whole batch, and the snapshot
// machinery publishes one new frozen generation per batch instead of one
// per edge. A batch is a *program*, replayed in order against the frozen
// base snapshot: `insert` of an edge a previous op in the same batch
// removed re-creates it (a reweight), duplicate inserts and deletes of
// missing edges are either hard errors (Strict) or ignored (Permissive).
//
// GraphLog couples a batch builder to a StreamingGraph and keeps the
// *inverse* of every committed batch, so update streams can be unwound
// batch by batch (the apply/undo round-trip property the test suite pins:
// commit ∘ undo is bit-identical on the CSR arrays).

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace grapr {

class StreamingGraph;
struct BatchResult;

/// How StreamingGraph::apply treats ops that do not change the graph.
enum class StreamApplyMode {
    /// Duplicate insert (edge already present) and delete of a missing
    /// edge throw; the engine state is untouched on error.
    Strict,
    /// Such ops are counted in BatchResult::ignored and dropped.
    Permissive,
};

/// One edge mutation. Undirected: {u, v} and {v, u} name the same edge;
/// self-loops are legal and stored once (volume counts them twice, the
/// paper's §III-B convention).
struct EdgeOp {
    enum class Kind : std::uint8_t { Insert, Remove };
    Kind kind = Kind::Insert;
    node u = 0;
    node v = 0;
    /// Weight of an insert (ignored by unweighted engines and by Remove;
    /// the inverse of a remove re-inserts the *observed* weight).
    edgeweight w = 1.0;
};

/// An ordered list of edge mutations, applied atomically by
/// StreamingGraph::apply — readers never observe a half-applied batch.
class EdgeBatch {
public:
    EdgeBatch() = default;

    void insert(node u, node v, edgeweight w = 1.0) {
        ops_.push_back({EdgeOp::Kind::Insert, u, v, w});
    }
    void remove(node u, node v) {
        ops_.push_back({EdgeOp::Kind::Remove, u, v, 1.0});
    }

    count size() const noexcept { return ops_.size(); }
    bool empty() const noexcept { return ops_.empty(); }
    void clear() { ops_.clear(); }

    const std::vector<EdgeOp>& ops() const noexcept { return ops_; }

private:
    std::vector<EdgeOp> ops_;
};

/// Batch builder + undo log bound to one StreamingGraph. Not thread-safe:
/// one GraphLog is one logical writer (the engine itself serializes
/// concurrent apply() calls from distinct writers).
class GraphLog {
public:
    explicit GraphLog(StreamingGraph& graph) : graph_(&graph) {}

    // --- building the pending batch -----------------------------------
    void insert(node u, node v, edgeweight w = 1.0) {
        pending_.insert(u, v, w);
    }
    void remove(node u, node v) { pending_.remove(u, v); }

    count pendingOps() const noexcept { return pending_.size(); }

    /// Seal the pending ops into a batch and apply it; the inverse batch
    /// is pushed onto the undo stack. Returns the engine's BatchResult.
    /// On a Strict-mode error the pending ops are kept for inspection.
    BatchResult commit(StreamApplyMode mode = StreamApplyMode::Strict);

    /// Apply a pre-built batch (pending ops are untouched).
    BatchResult apply(const EdgeBatch& batch,
                      StreamApplyMode mode = StreamApplyMode::Strict);

    /// Unwind the most recently committed batch by applying its inverse.
    /// Throws if there is nothing to undo.
    BatchResult undo();

    count committedBatches() const noexcept { return undo_.size(); }

private:
    StreamingGraph* graph_;
    EdgeBatch pending_;
    std::vector<EdgeBatch> undo_; // inverse of every committed batch
};

} // namespace grapr
