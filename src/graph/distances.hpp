#pragma once
// Unweighted shortest-path utilities: frontier-based BFS, eccentricity
// estimation and the double-sweep diameter lower bound, plus degree
// assortativity. Small-world-ness (tiny diameter) and degree mixing are
// the structural properties the paper's introduction calls out as the
// source of the computational challenges (cache behaviour, load
// imbalance); these tools let users quantify them.

#include <vector>

#include "graph/graph.hpp"

namespace grapr {

/// Breadth-first search from a single source.
class Bfs {
public:
    explicit Bfs(const Graph& g) : g_(&g) {}

    /// Run from `source`; distances of unreachable nodes are `unreachable`.
    void run(node source);

    static constexpr count unreachable = std::numeric_limits<count>::max();

    const std::vector<count>& distances() const noexcept { return distance_; }

    /// Largest finite distance of the last run (the source's eccentricity
    /// within its component).
    count eccentricity() const noexcept { return eccentricity_; }

    /// Node realizing the eccentricity (farthest reachable node).
    node farthestNode() const noexcept { return farthest_; }

    /// Number of nodes reached (including the source).
    count reached() const noexcept { return reached_; }

private:
    const Graph* g_;
    std::vector<count> distance_;
    count eccentricity_ = 0;
    node farthest_ = none;
    count reached_ = 0;
};

/// Double-sweep lower bound for the diameter: BFS from a seed, then BFS
/// from the farthest node found; the second eccentricity is a (usually
/// tight) lower bound. `sweeps` > 2 repeats from alternating endpoints.
count approximateDiameter(const Graph& g, node seed = 0, count sweeps = 4);

/// Pearson correlation of endpoint degrees over all edges (Newman's
/// degree assortativity): negative for hub-leaf mixing (internet
/// topologies), positive for social networks. Returns 0 for degenerate
/// inputs (no variance).
double degreeAssortativity(const Graph& g);

} // namespace grapr
