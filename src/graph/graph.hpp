#pragma once
// General-purpose adjacency-list graph, modelled on the data structure the
// paper builds its framework on (§IV-A): per-node std::vector adjacencies,
// optional edge weights, efficient node/edge insertion and deletion, and a
// high-level interface of (parallel) iteration methods that receive a
// callable and apply it to all elements.
//
// Graphs are undirected. Every non-loop edge {u,v} is stored in both
// adjacency lists; a self-loop {u,u} is stored once. Edge weights, when the
// graph is weighted, are stored positionally parallel to the adjacency
// arrays. Unweighted graphs report weight 1.0 per edge and skip the weight
// arrays entirely.

#include <cstdint>
#include <utility>
#include <vector>

#include <omp.h>

#include "support/common.hpp"
#include "support/view_check.hpp"

namespace grapr {

class Graph {
public:
    /// An empty graph with n isolated nodes.
    explicit Graph(count n = 0, bool weighted = false);

    // --- size and flags ---------------------------------------------------

    /// Number of existing nodes.
    count numberOfNodes() const noexcept { return n_; }
    /// Number of undirected edges (a self-loop counts as one edge).
    count numberOfEdges() const noexcept { return m_; }
    /// Number of self-loops.
    count numberOfSelfLoops() const noexcept { return selfLoops_; }
    /// Upper bound for node ids: ids are in [0, upperNodeIdBound()), some of
    /// which may have been removed.
    count upperNodeIdBound() const noexcept { return adjacency_.size(); }

    bool isWeighted() const noexcept { return weighted_; }
    bool isEmpty() const noexcept { return n_ == 0; }

    /// Does node id v refer to an existing node?
    bool hasNode(node v) const noexcept {
        return v < exists_.size() && exists_[v];
    }

    // --- structural updates ------------------------------------------------

    // Mutators carry a hidden defaulted std::source_location parameter in
    // GRAPR_VIEW_CHECK builds (expanded by GRAPR_VIEW_SITE_PARAM) so a
    // stale frozen view can report where its source graph mutated.

    /// Add an isolated node; returns its id.
    node addNode(GRAPR_VIEW_SITE_PARAM0);

    /// Remove a node and all incident edges. O(sum of neighbor degrees).
    void removeNode(node v GRAPR_VIEW_SITE_PARAM);

    /// Add undirected edge {u,v} with weight w (ignored when unweighted).
    /// Precondition: the edge does not already exist (checked only in
    /// addEdgeChecked); duplicate insertion creates a multi-edge.
    void addEdge(node u, node v, edgeweight w = 1.0 GRAPR_VIEW_SITE_PARAM);

    /// Like addEdge but returns false (and does nothing) if {u,v} exists.
    bool addEdgeChecked(node u, node v,
                        edgeweight w = 1.0 GRAPR_VIEW_SITE_PARAM);

    /// Remove undirected edge {u,v}; precondition: it exists.
    void removeEdge(node u, node v GRAPR_VIEW_SITE_PARAM);

    /// Does the edge {u,v} exist? O(min(deg(u), deg(v))), dropping to
    /// O(log min(deg(u), deg(v))) after sortNeighborLists() while the
    /// graph stays unmodified (see hasSortedNeighborLists).
    bool hasEdge(node u, node v) const;

    /// Increase the weight of existing edge {u,v} by delta (weighted graphs
    /// only); if the edge does not exist it is created with weight delta.
    void increaseWeight(node u, node v, edgeweight delta
                            GRAPR_VIEW_SITE_PARAM);

    /// Weight of edge {u,v}; 0 if absent, 1 for present edges of an
    /// unweighted graph.
    edgeweight weight(node u, node v) const;

    // --- degrees, weights, volumes -----------------------------------------

    /// Number of adjacency entries of v (self-loop counted once).
    count degree(node v) const noexcept {
        return adjacency_[v].size();
    }

    /// Sum of weights of edges incident to v, self-loop counted once.
    edgeweight weightedDegree(node v) const;

    /// vol(v) = weightedDegree(v) + weight of the self-loop again, i.e. the
    /// self-loop contributes 2·ω(v,v) (paper §III-B definition).
    edgeweight volume(node v) const;

    /// ω(E): total edge weight, self-loops counted once.
    edgeweight totalEdgeWeight() const noexcept { return totalWeight_; }

    // --- neighborhood access -----------------------------------------------

    /// i-th neighbor of v.
    node getIthNeighbor(node v, index i) const { return adjacency_[v][i]; }

    /// Weight of the i-th incident edge of v.
    edgeweight getIthNeighborWeight(node v, index i) const {
        return weighted_ ? weights_[v][i] : 1.0;
    }

    const std::vector<node>& neighbors(node v) const { return adjacency_[v]; }

    // --- iteration ---------------------------------------------------------

    /// Apply f(v) to every existing node, sequentially, ascending ids.
    template <typename F>
    void forNodes(F&& f) const {
        for (node v = 0; v < adjacency_.size(); ++v) {
            if (exists_[v]) f(v);
        }
    }

    /// Apply f(v) to every existing node in parallel (static schedule).
    template <typename F>
    void parallelForNodes(F&& f) const {
        const auto bound = static_cast<std::int64_t>(adjacency_.size());
#pragma omp parallel for default(none) shared(f, bound) schedule(static)
        for (std::int64_t v = 0; v < bound; ++v) {
            if (exists_[static_cast<node>(v)]) f(static_cast<node>(v));
        }
    }

    /// Apply f(v) to every existing node in parallel with guided scheduling
    /// — the load-balanced iteration the paper uses for scale-free degree
    /// distributions (§III-A implementation notes).
    template <typename F>
    void balancedParallelForNodes(F&& f) const {
        const auto bound = static_cast<std::int64_t>(adjacency_.size());
#pragma omp parallel for default(none) shared(f, bound) schedule(guided)
        for (std::int64_t v = 0; v < bound; ++v) {
            if (exists_[static_cast<node>(v)]) f(static_cast<node>(v));
        }
    }

    /// Apply f(u, v, w) to every undirected edge exactly once (u <= v).
    template <typename F>
    void forEdges(F&& f) const {
        for (node u = 0; u < adjacency_.size(); ++u) {
            if (!exists_[u]) continue;
            const auto& adj = adjacency_[u];
            for (index i = 0; i < adj.size(); ++i) {
                const node v = adj[i];
                if (v >= u) f(u, v, weighted_ ? weights_[u][i] : 1.0);
            }
        }
    }

    /// Parallel edge iteration, each undirected edge visited exactly once.
    template <typename F>
    void parallelForEdges(F&& f) const {
        const auto bound = static_cast<std::int64_t>(adjacency_.size());
#pragma omp parallel for default(none) shared(f, bound) schedule(guided)
        for (std::int64_t su = 0; su < bound; ++su) {
            const node u = static_cast<node>(su);
            if (!exists_[u]) continue;
            const auto& adj = adjacency_[u];
            for (index i = 0; i < adj.size(); ++i) {
                const node v = adj[i];
                if (v >= u) f(u, v, weighted_ ? weights_[u][i] : 1.0);
            }
        }
    }

    /// Apply f(v, w) to every neighbor of u (self-loop delivered once).
    template <typename F>
    void forNeighborsOf(node u, F&& f) const {
        const auto& adj = adjacency_[u];
        if (weighted_) {
            const auto& wts = weights_[u];
            for (index i = 0; i < adj.size(); ++i) f(adj[i], wts[i]);
        } else {
            for (index i = 0; i < adj.size(); ++i) f(adj[i], 1.0);
        }
    }

    // --- whole-graph helpers -----------------------------------------------

    /// List of existing node ids.
    std::vector<node> nodeIds() const;

    /// A weighted copy (no-op structural change if already weighted).
    Graph toWeighted() const;

    /// Structural equality: same node set, same edge multiset with equal
    /// weights (order-insensitive). Intended for tests and I/O round-trips.
    bool structurallyEquals(const Graph& other) const;

    /// Reserve adjacency capacity for node v.
    void reserveNeighbors(node v, count capacity);

    /// Sort every adjacency list by neighbor id (weights permuted along).
    /// Improves scan locality and switches hasEdge/weight membership
    /// lookups to binary search; invalidates positional neighbor indices.
    /// Counts as a mutation for the view-lifecycle contract: frozen views
    /// preserve pre-sort adjacency order, so positional reads diverge.
    void sortNeighborLists(GRAPR_VIEW_SITE_PARAM0);

    /// True while every adjacency list is sorted ascending: set by
    /// sortNeighborLists() (and trivially on construction), cleared by any
    /// structural edge update. Frozen-style workloads sort once and keep
    /// O(log deg) membership queries from then on.
    bool hasSortedNeighborLists() const noexcept { return sorted_; }

    /// Validate internal invariants (degree symmetry, weight array sizes,
    /// edge/weight totals); throws on violation. Used by tests and after
    /// deserialization.
    void checkConsistency() const;

private:
    count n_;                // existing nodes
    count m_ = 0;            // undirected edges
    count selfLoops_ = 0;
    bool weighted_;
    edgeweight totalWeight_ = 0.0;
    std::vector<std::vector<node>> adjacency_;
    std::vector<std::vector<edgeweight>> weights_; // empty when unweighted
    std::vector<std::uint8_t> exists_;
    bool sorted_ = true; // empty adjacency lists are trivially sorted
#ifdef GRAPR_VIEW_CHECK
    // Mutation generation cell shared with every CsrGraph frozen from this
    // graph (see support/view_check.hpp). Copies get a fresh cell.
    view::SourceStamp viewSourceStamp_;
#endif

    /// Index of v in u's adjacency list, or none-like npos. Binary search
    /// when sorted_, linear scan otherwise.
    index indexOfNeighbor(node u, node v) const;

    friend class GraphBuilder;
    friend class CsrGraph;
};

} // namespace grapr
