#pragma once
// Write-ahead log for StreamingGraph ("GWAL") — every committed batch is
// appended, CRC-checksummed and fsync'd, BEFORE the engine publishes the
// generation it produces, so a crash at any instant loses at most the
// batches the group-commit window had not yet synced, and never loses
// consistency (DESIGN.md "Durability, recovery, and fault injection").
//
// Segment layout (native byte order):
//
//   0   magic "GWAL"
//   4   u32  format version (1)
//   8   u64  baseGeneration — the checkpoint generation this segment's
//            records replay against; record k produces baseGeneration+k
//   16  records, back to back:
//
//       u32 payloadBytes | u32 crc32(payload) | payload
//       payload: u64 generation | u32 opCount
//                | opCount x { u8 kind, u32 u, u32 v, f64 w }
//
// Records hold the NET batch (the deterministic reduction the engine
// publishes: removes first, then inserts, sorted by endpoints), so a
// replay in Strict mode reproduces the exact CSR arrays bit for bit.
//
// Torn-write truncation rule: on replay, scanning stops at the first
// record whose length prefix overruns the remaining bytes, whose CRC
// does not match its payload, whose payload is structurally inconsistent
// (opCount disagrees with payloadBytes), or whose generation breaks the
// baseGeneration+k sequence. Everything before that point is valid (CRCs
// proved it); everything from it on is a torn tail from a crash mid-
// append and is dropped — optionally physically, by truncating the file
// — never misparsed.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph_log.hpp"
#include "support/common.hpp"

namespace grapr::wal {

/// One replayed record: the net batch and the generation it produces.
struct WalRecord {
    std::uint64_t generation = 0;
    EdgeBatch batch;
};

/// Result of scanning a segment.
struct ReplayResult {
    std::uint64_t baseGeneration = 0;
    std::vector<WalRecord> records; ///< the valid prefix, in append order
    count validBytes = 0;           ///< header + all valid records
    bool torn = false;              ///< trailing bytes were invalid
};

/// Append-only writer over one WAL segment. Not thread-safe: the engine
/// serializes appends on its writer mutex.
class WalWriter {
public:
    /// A closed writer (no segment attached).
    WalWriter() = default;

    /// Create (truncate) segment `path`; its first record will produce
    /// generation `baseGeneration + 1`. `groupCommit` is the fsync
    /// cadence: 1 syncs every append (strict durability); N > 1 syncs
    /// every Nth append, so a crash may lose up to the last N-1
    /// acknowledged batches — never consistency.
    WalWriter(const std::string& path, std::uint64_t baseGeneration,
              count groupCommit);

    WalWriter(const WalWriter&) = delete;
    WalWriter& operator=(const WalWriter&) = delete;
    WalWriter(WalWriter&& other) noexcept;
    WalWriter& operator=(WalWriter&& other) noexcept;
    ~WalWriter();

    /// Append one record; throws IoError (or fault::InjectedFault) on
    /// failure. Strong guarantee: a failed append rolls the file back to
    /// its previous length. If even the rollback fails the writer is
    /// poisoned() — the on-disk tail is in an unknown state and the
    /// owner must stop using the log (recovery handles the torn tail).
    void append(const EdgeBatch& batch, std::uint64_t generation);

    /// fsync any unsynced appends of the group-commit window.
    void sync();

    /// Best-effort sync + close the segment (errors swallowed: a segment
    /// is only closed at rotation, when a fresher checkpoint already
    /// supersedes it). No-op on a closed writer.
    void close();

    bool isOpen() const noexcept { return file_ != nullptr; }
    bool poisoned() const noexcept { return poisoned_; }
    const std::string& path() const noexcept { return path_; }
    count records() const noexcept { return records_; }

private:
    void syncNow();
    void writeAll(const unsigned char* data, std::size_t bytes);

    std::FILE* file_ = nullptr;
    std::string path_;
    count groupCommit_ = 1;
    count bytes_ = 0;    ///< length of the fully-appended prefix
    count records_ = 0;  ///< records successfully appended
    count unsynced_ = 0; ///< appends since the last fsync
    bool poisoned_ = false;
};

/// Scan segment `path` and return every valid record (see the torn-write
/// truncation rule above). With `truncateTorn` the file is physically
/// truncated to the valid prefix, so a later append continues from a
/// clean tail. Throws IoError only when the file cannot be opened/read
/// or its HEADER is invalid — a damaged header means the file is not a
/// WAL segment at all, while a damaged tail is expected crash damage and
/// is handled by the truncation rule.
ReplayResult replay(const std::string& path, bool truncateTorn);

} // namespace grapr::wal
