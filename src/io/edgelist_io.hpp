#pragma once
// Whitespace-separated edge list I/O ("u v [w]" per line, '#' or '%'
// comments). The format of the SNAP collection the paper draws two of its
// networks from. Node ids in the file may be sparse; the reader remaps them
// to consecutive ids and can report the mapping.

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace grapr::io {

struct EdgeListOptions {
    bool weighted = false;     ///< expect a third column with edge weights
    bool directedInput = false; ///< treat (u,v) and (v,u) as one undirected
                                ///< edge (dedup applied)
    char comment = '#';
};

/// Read an edge list. Returns the graph; if `originalIds` is non-null it
/// receives the original id of every remapped node.
Graph readEdgeList(const std::string& path, const EdgeListOptions& options = {},
                   std::vector<std::uint64_t>* originalIds = nullptr);

/// Write g as "u v [w]" lines (each undirected edge once).
void writeEdgeList(const Graph& g, const std::string& path,
                   bool withWeights = false);

} // namespace grapr::io
