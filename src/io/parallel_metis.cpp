#include "io/parallel_metis.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include <omp.h>

#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "io/text_scanner.hpp"
#include "support/logging.hpp"
#include "support/parallel.hpp"

namespace grapr::io {

namespace {

struct ChunkError {
    bool set = false;
    std::size_t offset = 0;
    const char* message = nullptr;

    void record(std::size_t off, const char* msg) {
        if (set) return;
        set = true;
        offset = off;
        message = msg;
    }
};

struct MetisChunk {
    std::vector<count> rowDegrees;     // kept entries per data row
    std::vector<std::uint8_t> rowBlank; // row is all whitespace
    ChunkError error;
    count droppedTokens = 0; // permissive-mode junk tokens
};

struct MetisHeader {
    count n = 0;
    count m = 0;
    bool weighted = false;
    std::size_t bodyOffset = 0; // first byte after the header line
    count headerLine = 0;       // 1-based line the header sits on
};

int resolveThreads(const ParseOptions& options) {
    return options.threads > 0 ? options.threads : omp_get_max_threads();
}

/// A body line is a comment iff its first column is '%' (the format's
/// rule; an indented '%' is a data row). Everything else — including an
/// empty line, which encodes an isolated vertex — is a data row.
bool isMetisComment(const char* p, const char* lineEnd) {
    return p < lineEnd && *p == '%';
}

MetisHeader parseHeader(const char* data, std::size_t size,
                        const std::string& name) {
    const char* const end = data + size;
    const char* p = data;
    count line = 0;
    while (p < end) {
        const char* lineEnd = scan::findLineEnd(p, end);
        ++line;
        if (isMetisComment(p, lineEnd)) {
            p = lineEnd < end ? lineEnd + 1 : end;
            continue;
        }
        MetisHeader header;
        header.headerLine = line;
        const char* q = p;
        scan::skipSpace(q, lineEnd);
        std::uint64_t n = 0, m = 0;
        if (!scan::parseU64(q, lineEnd, n)) {
            throw IoError(name, line, static_cast<std::size_t>(q - data),
                          "malformed header (expected \"n m [fmt]\")");
        }
        scan::skipSpace(q, lineEnd);
        if (!scan::parseU64(q, lineEnd, m)) {
            throw IoError(name, line, static_cast<std::size_t>(q - data),
                          "malformed header (expected \"n m [fmt]\")");
        }
        scan::skipSpace(q, lineEnd);
        std::uint64_t fmt = 0;
        const char* fmtStart = q;
        if (scan::parseU64(q, lineEnd, fmt) && fmt != 0 && fmt != 1) {
            throw IoError(name, line,
                          static_cast<std::size_t>(fmtStart - data),
                          "only fmt 0 (plain) and 1 (edge weights) are "
                          "supported");
        }
        if (n > static_cast<std::uint64_t>(none)) {
            throw IoError(name, line, static_cast<std::size_t>(p - data),
                          "declared node count exceeds the 32-bit id space");
        }
        header.n = static_cast<count>(n);
        header.m = static_cast<count>(m);
        header.weighted = fmt == 1;
        header.bodyOffset = static_cast<std::size_t>(
            (lineEnd < end ? lineEnd + 1 : end) - data);
        return header;
    }
    throw IoError(name, line, size, "missing header");
}

/// Scan one data row, invoking emit(vZeroBased, w) for every kept entry.
/// Used identically by the counting and the writing pass, so the two
/// always agree. Returns false once `error` is recorded (strict mode, or
/// a structural violation in either mode).
template <typename Emit>
bool scanMetisRow(const char* p, const char* lineEnd, const char* data,
                  count n, bool weighted, bool strict, count& droppedTokens,
                  ChunkError& error, Emit&& emit) {
    scan::skipSpace(p, lineEnd);
    while (p < lineEnd) {
        const char* tokenStart = p;
        std::uint64_t id = 0;
        if (!scan::parseU64(p, lineEnd, id)) {
            if (strict) {
                error.record(static_cast<std::size_t>(tokenStart - data),
                             "malformed neighbor id (expected 1-based "
                             "integer)");
                return false;
            }
            scan::skipToken(p, lineEnd);
            ++droppedTokens;
            scan::skipSpace(p, lineEnd);
            continue;
        }
        if (id < 1 || id > n) {
            // Not recoverable in either mode: the mirrored entry in the
            // other endpoint's row cannot be located, so dropping it would
            // silently desymmetrise the graph.
            error.record(static_cast<std::size_t>(tokenStart - data),
                         "neighbor id out of range");
            return false;
        }
        double w = 1.0;
        bool keep = true;
        if (weighted) {
            scan::skipSpace(p, lineEnd);
            const char* weightStart = p;
            if (!scan::parseDouble(p, lineEnd, w)) {
                if (strict) {
                    error.record(
                        static_cast<std::size_t>(weightStart - data),
                        "missing or malformed edge weight");
                    return false;
                }
                scan::skipToken(p, lineEnd);
                droppedTokens += 2; // the pair
                keep = false;
            }
        }
        if (keep) emit(static_cast<node>(id - 1), w);
        scan::skipSpace(p, lineEnd);
    }
    return true;
}

} // namespace

CsrGraph parseMetisCsr(const char* data, std::size_t size,
                       const std::string& name, const ParseOptions& options) {
    const char* const end = data + size;
    const int threads = resolveThreads(options);

    const MetisHeader header = parseHeader(data, size, name);

    const std::vector<scan::Chunk> ranges =
        scan::splitLineChunks(data + header.bodyOffset, end, threads);
    std::vector<MetisChunk> chunks(ranges.size());
    const int numChunks = static_cast<int>(ranges.size());

    // Pass 1: per chunk, count data rows and kept entries per row.
#pragma omp parallel for default(none)                                       \
    shared(ranges, chunks, data, header, options, numChunks)                 \
    num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        const scan::Chunk& range = ranges[static_cast<std::size_t>(c)];
        MetisChunk& chunk = chunks[static_cast<std::size_t>(c)];
        const char* p = range.begin;
        while (p < range.end && !chunk.error.set) {
            const char* lineEnd = scan::findLineEnd(p, range.end);
            if (!isMetisComment(p, lineEnd)) {
                const char* blankProbe = p;
                scan::skipSpace(blankProbe, lineEnd);
                chunk.rowBlank.push_back(blankProbe == lineEnd ? 1 : 0);
                count entries = 0;
                scanMetisRow(p, lineEnd, data, header.n, header.weighted,
                             options.strict, chunk.droppedTokens, chunk.error,
                             [&](node, double) { ++entries; });
                chunk.rowDegrees.push_back(entries);
            }
            p = lineEnd < range.end ? lineEnd + 1 : range.end;
        }
    }

    count droppedTokens = 0;
    for (const MetisChunk& chunk : chunks) {
        if (chunk.error.set) {
            throw IoError(name,
                          scan::lineOfOffset(data, size, chunk.error.offset),
                          chunk.error.offset, chunk.error.message);
        }
        droppedTokens += chunk.droppedTokens;
    }
    if (droppedTokens > 0) {
        logWarn("readMetis: dropped ", droppedTokens, " junk token(s) in ",
                name);
    }

    // Row accounting: trailing all-blank rows are not vertex rows (files
    // routinely end in stray newlines); any other surplus is an error in
    // strict mode and ignored with a warning otherwise.
    count totalRows = 0;
    for (const MetisChunk& chunk : chunks) {
        totalRows += chunk.rowDegrees.size();
    }
    for (auto it = chunks.rbegin();
         it != chunks.rend() && totalRows > header.n; ++it) {
        while (totalRows > header.n && !it->rowDegrees.empty() &&
               it->rowBlank.back() == 1) {
            it->rowDegrees.pop_back();
            it->rowBlank.pop_back();
            --totalRows;
        }
        if (!it->rowDegrees.empty() && it->rowBlank.back() == 0) break;
    }
    if (totalRows < header.n) {
        throw IoError(name, 0, size,
                      "fewer adjacency rows than the declared node count");
    }
    if (totalRows > header.n) {
        if (options.strict) {
            throw IoError(name, 0, size,
                          "more adjacency rows than the declared node count");
        }
        logWarn("readMetis: ignoring ", totalRows - header.n,
                " adjacency row(s) beyond the declared node count in ", name);
    }

    // First vertex id of every chunk, then CSR offsets via prefix sum
    // over the kept rows.
    std::vector<count> firstRow(chunks.size() + 1, 0);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
        firstRow[c + 1] = firstRow[c] + chunks[c].rowDegrees.size();
    }
    std::vector<count> degrees(header.n, 0);
#pragma omp parallel for default(none)                                       \
    shared(chunks, firstRow, degrees, header, numChunks)                     \
    num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        const auto uc = static_cast<std::size_t>(c);
        for (std::size_t r = 0; r < chunks[uc].rowDegrees.size(); ++r) {
            const count row = firstRow[uc] + r;
            // grapr:analyze-allow(shared-write-safety): row lies in chunk
            // c's slice [firstRow[c], firstRow[c+1]) — the inner offset r
            // is bounded by the slice width, which the lattice cannot see.
            if (row < header.n) degrees[row] = chunks[uc].rowDegrees[r];
        }
    }
    const count entries = Parallel::prefixSum(degrees);
    std::vector<index> offsets(header.n + 1);
    offsets[header.n] = entries;
    const auto sn = static_cast<std::int64_t>(header.n);
#pragma omp parallel for default(none) shared(offsets, degrees, sn)          \
    num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < sn; ++v) {
        offsets[static_cast<std::size_t>(v)] =
            degrees[static_cast<std::size_t>(v)];
    }

    // Pass 2: re-tokenise and write every row's entries into its slice.
    std::vector<node> neighbors(entries);
    std::vector<edgeweight> weights(header.weighted ? entries : 0);
#pragma omp parallel for default(none)                                       \
    shared(ranges, chunks, data, header, options, firstRow, offsets,         \
               neighbors, weights, numChunks)                                \
    num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        const auto uc = static_cast<std::size_t>(c);
        const scan::Chunk& range = ranges[uc];
        MetisChunk& chunk = chunks[uc];
        count row = firstRow[uc];
        const count rowLimit = firstRow[uc] + chunk.rowDegrees.size();
        index cursor = firstRow[uc] < header.n ? offsets[firstRow[uc]] : 0;
        count dummyDropped = 0;
        const char* p = range.begin;
        while (p < range.end && row < rowLimit) {
            const char* lineEnd = scan::findLineEnd(p, range.end);
            if (!isMetisComment(p, lineEnd)) {
                if (row < header.n) {
                    scanMetisRow(p, lineEnd, data, header.n, header.weighted,
                                 options.strict, dummyDropped, chunk.error,
                                 [&](node v, double w) {
                                     // grapr:analyze-allow(shared-write-safety):
                                     // cursor starts at offsets[firstRow[c]]
                                     // and stays inside chunk c's entry
                                     // slice; the ternary initializer is
                                     // beyond the derived-index rule.
                                     neighbors[cursor] = v;
                                     if (header.weighted) {
                                         // grapr:analyze-allow(shared-write-safety):
                                         // same chunk-slice cursor.
                                         weights[cursor] = w;
                                     }
                                     ++cursor;
                                 });
                }
                ++row;
            }
            p = lineEnd < range.end ? lineEnd + 1 : range.end;
        }
    }

    CsrGraph graph = [&] {
        try {
            return CsrGraph(std::move(offsets), std::move(neighbors),
                            std::move(weights), header.weighted);
        } catch (const std::exception& e) {
            throw IoError(name, 0, 0,
                          std::string("inconsistent graph structure: ") +
                              e.what());
        }
    }();

    if (graph.numberOfEdges() != header.m) {
        if (options.strict) {
            throw IoError(name, header.headerLine, 0,
                          "header declares " + std::to_string(header.m) +
                              " edges but " +
                              std::to_string(graph.numberOfEdges()) +
                              " were parsed");
        }
        logWarn("readMetis: header declares ", header.m, " edges but ",
                graph.numberOfEdges(), " were parsed (", name, ")");
    }
    return graph;
}

CsrGraph readMetisCsr(const std::string& path, const ParseOptions& options) {
    MappedFile file(path);
    return parseMetisCsr(file.data(), file.size(), path, options);
}

} // namespace grapr::io
