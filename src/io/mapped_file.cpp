#include "io/mapped_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "io/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GRAPR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GRAPR_HAVE_MMAP 0
#endif

namespace grapr::io {

namespace {

bool mmapDisabled() {
    const char* env = std::getenv("GRAPR_IO_NO_MMAP");
    return env && env[0] == '1';
}

/// stdio fallback: read the whole file into a heap buffer.
std::vector<char> readWhole(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        throw IoError(path, 0, 0,
                      std::string("cannot open: ") + std::strerror(errno));
    }
    std::vector<char> buffer;
    char block[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(block, 1, sizeof block, f)) > 0) {
        buffer.insert(buffer.end(), block, block + got);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) throw IoError(path, 0, 0, "read error");
    return buffer;
}

} // namespace

MappedFile::MappedFile(const std::string& path) {
#if GRAPR_HAVE_MMAP
    if (!mmapDisabled()) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            throw IoError(path, 0, 0,
                          std::string("cannot open: ") + std::strerror(errno));
        }
        struct stat st {};
        if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
            ::close(fd);
            throw IoError(path, 0, 0, "not a regular file");
        }
        size_ = static_cast<std::size_t>(st.st_size);
        if (size_ == 0) {
            // mmap of length 0 is invalid; an empty file needs no bytes.
            ::close(fd);
            data_ = "";
            return;
        }
        void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd); // the mapping keeps its own reference
        if (map != MAP_FAILED) {
#ifdef POSIX_MADV_SEQUENTIAL
            ::posix_madvise(map, size_, POSIX_MADV_SEQUENTIAL);
#endif
            data_ = static_cast<const char*>(map);
            mapped_ = true;
            return;
        }
        // fall through to the read() path (e.g. mmap-hostile filesystems)
    }
#endif
    fallback_ = readWhole(path);
    data_ = fallback_.empty() ? "" : fallback_.data();
    size_ = fallback_.size();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
    if (!mapped_) data_ = fallback_.empty() ? "" : fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        reset();
        data_ = other.data_;
        size_ = other.size_;
        mapped_ = other.mapped_;
        fallback_ = std::move(other.fallback_);
        if (!mapped_) data_ = fallback_.empty() ? "" : fallback_.data();
        other.data_ = nullptr;
        other.size_ = 0;
        other.mapped_ = false;
    }
    return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
#if GRAPR_HAVE_MMAP
    if (mapped_ && data_ != nullptr) {
        ::munmap(const_cast<char*>(data_), size_);
    }
#endif
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    fallback_.clear();
}

} // namespace grapr::io
