#include "io/edgelist_io.hpp"

#include <fstream>
#include <ios>

#include "io/io_error.hpp"
#include "io/parallel_edgelist.hpp"
#include "io/text_scanner.hpp"
#include "support/fault.hpp"

namespace grapr::io {

Graph readEdgeList(const std::string& path, const EdgeListOptions& options,
                   std::vector<std::uint64_t>* originalIds) {
    // Route through the parallel mmap pipeline (parallel_edgelist.hpp):
    // chunked tokenisation, two-pass CSR build, then one thaw back into
    // the mutable Graph for this adjacency-list-returning API. Semantics
    // (first-appearance remap, "grapr edge list: n=" header handling,
    // directed-input dedup, strict errors) are unchanged; errors are now
    // IoError with the exact line and byte offset.
    ParseOptions parseOptions;
    parseOptions.weighted = options.weighted;
    parseOptions.directedInput = options.directedInput;
    parseOptions.comment = options.comment;
    return readEdgeListCsr(path, parseOptions, originalIds).toGraph();
}

void writeEdgeList(const Graph& g, const std::string& path, bool withWeights) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError(path, 0, 0, "writeEdgeList: cannot open for writing");
    // Track the last position the stream was known-good at, so a short
    // write (ENOSPC, quota, dying disk) reports where the file ends. The
    // old code checked the stream only once, after the loop — a full-disk
    // failure was silently swallowed until (and sometimes past) close.
    count lastGood = 0;
    const auto checkStream = [&](const char* what) {
        if (!out) throw IoError(path, 0, lastGood, std::string(what) +
                                " failed (disk full?)");
        lastGood = static_cast<count>(out.tellp());
    };
    out << "# grapr edge list: n=" << g.numberOfNodes()
        << " m=" << g.numberOfEdges() << "\n";
    checkStream("writeEdgeList: header write");
    count row = 0;
    g.forEdges([&](node u, node v, edgeweight w) {
        if (GRAPR_FAULT_INJECT("io.write.edgelist")) {
            out.setstate(std::ios::badbit); // simulated ENOSPC
        }
        out << u << '\t' << v;
        // Shortest round-trip form: re-reading restores w bit-exactly.
        if (withWeights) out << '\t' << scan::formatWeight(w);
        out << '\n';
        // Checking every row would tellp() per edge; every 1024 rows
        // keeps the reported offset within one block of the failure.
        if ((++row & 1023u) == 0) checkStream("writeEdgeList: row write");
    });
    out.flush();
    checkStream("writeEdgeList: flush");
    out.close();
    if (out.fail()) {
        throw IoError(path, 0, lastGood, "writeEdgeList: close failed");
    }
}

} // namespace grapr::io
