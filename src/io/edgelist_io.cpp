#include "io/edgelist_io.hpp"

#include <fstream>

#include "io/parallel_edgelist.hpp"
#include "io/text_scanner.hpp"

namespace grapr::io {

Graph readEdgeList(const std::string& path, const EdgeListOptions& options,
                   std::vector<std::uint64_t>* originalIds) {
    // Route through the parallel mmap pipeline (parallel_edgelist.hpp):
    // chunked tokenisation, two-pass CSR build, then one thaw back into
    // the mutable Graph for this adjacency-list-returning API. Semantics
    // (first-appearance remap, "grapr edge list: n=" header handling,
    // directed-input dedup, strict errors) are unchanged; errors are now
    // IoError with the exact line and byte offset.
    ParseOptions parseOptions;
    parseOptions.weighted = options.weighted;
    parseOptions.directedInput = options.directedInput;
    parseOptions.comment = options.comment;
    return readEdgeListCsr(path, parseOptions, originalIds).toGraph();
}

void writeEdgeList(const Graph& g, const std::string& path, bool withWeights) {
    std::ofstream out(path);
    if (!out) fail("writeEdgeList: cannot open " + path);
    out << "# grapr edge list: n=" << g.numberOfNodes()
        << " m=" << g.numberOfEdges() << "\n";
    g.forEdges([&](node u, node v, edgeweight w) {
        out << u << '\t' << v;
        // Shortest round-trip form: re-reading restores w bit-exactly.
        if (withWeights) out << '\t' << scan::formatWeight(w);
        out << '\n';
    });
    if (!out) fail("writeEdgeList: write error on " + path);
}

} // namespace grapr::io
