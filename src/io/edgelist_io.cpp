#include "io/edgelist_io.hpp"

#include <charconv>
#include <cstring>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "graph/graph_builder.hpp"

namespace grapr::io {

namespace {

bool isCommentOrBlank(const std::string& line, char comment) {
    for (char c : line) {
        if (c == ' ' || c == '\t' || c == '\r') continue;
        return c == comment || c == '%';
    }
    return true;
}

} // namespace

Graph readEdgeList(const std::string& path, const EdgeListOptions& options,
                   std::vector<std::uint64_t>* originalIds) {
    std::ifstream in(path);
    if (!in) fail("readEdgeList: cannot open " + path);

    std::unordered_map<std::uint64_t, node> remap;
    std::vector<std::uint64_t> original;
    struct RawEdge {
        node u, v;
        edgeweight w;
    };
    std::vector<RawEdge> edges;

    auto mapId = [&](std::uint64_t raw) -> node {
        auto [it, inserted] =
            remap.emplace(raw, static_cast<node>(original.size()));
        if (inserted) original.push_back(raw);
        return it->second;
    };

    // Header written by writeEdgeList ("# grapr edge list: n=<N> m=<M>")
    // pins the node count, so isolated nodes and raw ids survive the round
    // trip; foreign files without it get first-appearance remapping.
    count declaredN = 0;
    bool haveDeclaredN = false;

    std::string line;
    count lineNumber = 0;
    while (std::getline(in, line)) {
        ++lineNumber;
        if (isCommentOrBlank(line, options.comment)) {
            const auto marker = line.find("grapr edge list: n=");
            if (marker != std::string::npos) {
                declaredN = std::strtoull(
                    line.c_str() + marker + std::strlen("grapr edge list: n="),
                    nullptr, 10);
                haveDeclaredN = true;
            }
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t ru = 0, rv = 0;
        if (!(fields >> ru >> rv)) {
            fail("readEdgeList: malformed line " + std::to_string(lineNumber) +
                 " in " + path);
        }
        edgeweight w = 1.0;
        if (options.weighted && !(fields >> w)) {
            fail("readEdgeList: missing weight on line " +
                 std::to_string(lineNumber) + " in " + path);
        }
        if (haveDeclaredN) {
            require(ru < declaredN && rv < declaredN,
                    "readEdgeList: node id exceeds declared n");
            edges.push_back({static_cast<node>(ru), static_cast<node>(rv), w});
        } else {
            edges.push_back({mapId(ru), mapId(rv), w});
        }
    }

    if (haveDeclaredN) {
        original.resize(declaredN);
        for (count v = 0; v < declaredN; ++v) original[v] = v;
    }
    GraphBuilder builder(original.size(), options.weighted);
    for (const auto& e : edges) builder.addEdge(e.u, e.v, e.w);
    // Directed inputs list most edges twice (u v and v u); dedup collapses
    // them to one undirected edge.
    Graph g = builder.build(/*dedup=*/options.directedInput,
                            /*sumWeights=*/false);
    if (originalIds) *originalIds = std::move(original);
    return g;
}

void writeEdgeList(const Graph& g, const std::string& path, bool withWeights) {
    std::ofstream out(path);
    if (!out) fail("writeEdgeList: cannot open " + path);
    out << "# grapr edge list: n=" << g.numberOfNodes()
        << " m=" << g.numberOfEdges() << "\n";
    g.forEdges([&](node u, node v, edgeweight w) {
        out << u << '\t' << v;
        if (withWeights) out << '\t' << w;
        out << '\n';
    });
    if (!out) fail("writeEdgeList: write error on " + path);
}

} // namespace grapr::io
