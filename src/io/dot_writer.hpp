#pragma once
// Graphviz DOT output for community graphs (paper Figure 11): the coarse
// graph induced by a community detection solution, node sizes proportional
// to community sizes. Intended for qualitative inspection of resolution
// differences between PLP / PLM / PLMR / EPP.

#include <string>

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr::io {

/// Write g as plain DOT (undirected, weights as edge labels when weighted).
void writeDot(const Graph& g, const std::string& path);

/// Write the community graph of (g, zeta): one DOT node per community with
/// width/label scaled by community size; edge thickness by inter-community
/// weight. zeta must be compacted (ids < upperBound, consecutive).
void writeCommunityGraphDot(const Graph& communityGraph,
                            const std::vector<count>& communitySizes,
                            const std::string& path);

} // namespace grapr::io
