#pragma once
// GML (Graph Modelling Language) I/O — the interchange format of
// visualization tools (Gephi, Cytoscape, yEd) and of many classic network
// datasets. Writing supports an optional community attribute so detected
// solutions can be colored directly in the visualizer.

#include <string>

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr::io {

/// Write g as GML; when `communities` is non-null, each node record gets a
/// `community <id>` attribute.
void writeGml(const Graph& g, const std::string& path,
              const Partition* communities = nullptr);

/// Read a GML file (the structural subset: node ids and edges, optional
/// `weight` attribute on edges). Node ids are remapped to [0, n).
Graph readGml(const std::string& path);

} // namespace grapr::io
