#pragma once
// METIS graph format I/O — the format of the 10th DIMACS Implementation
// Challenge collection the paper's main test set comes from.
//
// Header line: "n m [fmt]" where fmt 1 = edge weights present (the subset
// of the format grapr supports; node weights are not used by community
// detection). Line i (1-based) lists the neighbors of node i, ids 1-based,
// optionally interleaved with edge weights.

#include <string>

#include "graph/graph.hpp"

namespace grapr::io {

Graph readMetis(const std::string& path);

void writeMetis(const Graph& g, const std::string& path);

} // namespace grapr::io
