#pragma once
// METIS graph format I/O — the format of the 10th DIMACS Implementation
// Challenge collection the paper's main test set comes from.
//
// Header line: "n m [fmt]" where fmt 1 = edge weights present (the subset
// of the format grapr supports; node weights are not used by community
// detection). Line i (1-based) lists the neighbors of node i, ids 1-based,
// optionally interleaved with edge weights.
//
// Reading runs on the parallel mmap pipeline (parallel_metis.hpp) and
// reports malformed input as io::IoError with line/byte location. The
// one-argument readMetis defaults to permissive mode — DIMACS files in
// the wild routinely declare an edge count that disagrees with the body,
// which is warned about, not fatal. Pass ParseOptions{.strict = true} to
// make every disagreement (junk tokens, header-vs-actual edge count) an
// error.

#include <string>

#include "graph/graph.hpp"
#include "io/parse_options.hpp"

namespace grapr::io {

/// Read a METIS file permissively (count mismatches warn, junk tokens are
/// dropped with a warning; structural violations still throw IoError).
Graph readMetis(const std::string& path);

/// Read a METIS file with explicit options (strict mode: any
/// header/content disagreement throws IoError).
Graph readMetis(const std::string& path, const ParseOptions& options);

void writeMetis(const Graph& g, const std::string& path);

} // namespace grapr::io
