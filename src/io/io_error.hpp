#pragma once
// IoError — the structured exception every grapr text parser throws on
// malformed input. Carries the source name (usually a path), the 1-based
// line number and the byte offset of the offending position, so tooling
// can point at the exact spot instead of printing "parse failed".
//
// A line of 0 means the error is not tied to one line (e.g. the file
// could not be opened, or a whole-file consistency check failed); the
// byte offset is always within [0, file size].

#include <stdexcept>
#include <string>

#include "support/common.hpp"

namespace grapr::io {

class IoError : public std::runtime_error {
public:
    IoError(std::string path, count line, count byteOffset,
            const std::string& message)
        : std::runtime_error(format(path, line, byteOffset, message)),
          path_(std::move(path)),
          line_(line),
          byteOffset_(byteOffset) {}

    /// Source the error occurred in (file path or buffer name).
    const std::string& path() const noexcept { return path_; }

    /// 1-based line of the offending token; 0 if not line-specific.
    count line() const noexcept { return line_; }

    /// Byte offset of the offending position within the input.
    count byteOffset() const noexcept { return byteOffset_; }

private:
    static std::string format(const std::string& path, count line,
                              count byteOffset, const std::string& message) {
        std::string out = path;
        if (line > 0) {
            out += ":" + std::to_string(line);
        }
        out += ": " + message + " (byte " + std::to_string(byteOffset) + ")";
        return out;
    }

    std::string path_;
    count line_;
    count byteOffset_;
};

} // namespace grapr::io
