#pragma once
// Allocation-free text scanning primitives shared by the parallel parsers:
// cursor-based integer/double token readers (std::from_chars underneath,
// so no locale, no stream state, no heap), newline-aligned chunk
// splitting, line accounting for error reports, and the shortest
// round-trip weight formatter used by the writers.

#include <charconv>
#include <cstring>
#include <string>
#include <system_error>
#include <vector>

#include "support/common.hpp"

namespace grapr::io::scan {

/// Horizontal whitespace: what separates tokens within a line.
inline bool isSpace(char c) noexcept {
    return c == ' ' || c == '\t' || c == '\r';
}

inline void skipSpace(const char*& p, const char* end) noexcept {
    while (p < end && isSpace(*p)) ++p;
}

/// Advance past the current non-whitespace token (permissive recovery).
inline void skipToken(const char*& p, const char* end) noexcept {
    while (p < end && !isSpace(*p)) ++p;
}

/// Parse an unsigned decimal integer at p. On success advances p past the
/// digits and returns true; on failure (no digit, or overflow) leaves p
/// unchanged and returns false. A leading '-' or '+' is a failure: node
/// ids are non-negative by definition, and silently wrapping "-1" to
/// 2^64-1 (what istream extraction does) has hidden real input errors.
inline bool parseU64(const char*& p, const char* end,
                     std::uint64_t& out) noexcept {
    const auto [next, ec] = std::from_chars(p, end, out, 10);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
}

/// Parse a floating-point token at p (from_chars general format; accepts
/// the usual "2", "2.5", "1e-3", "-0.25" spellings). Same cursor contract
/// as parseU64.
inline bool parseDouble(const char*& p, const char* end,
                        double& out) noexcept {
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
}

/// End of the line starting at p: the first '\n' at or after p, or end.
inline const char* findLineEnd(const char* p, const char* end) noexcept {
    const void* nl = std::memchr(p, '\n', static_cast<std::size_t>(end - p));
    return nl ? static_cast<const char*>(nl) : end;
}

/// True when [p, lineEnd) is blank or a comment line (first non-space
/// char is `comment` or '%', the comment char of every format we read).
inline bool isCommentOrBlank(const char* p, const char* lineEnd,
                             char comment) noexcept {
    skipSpace(p, lineEnd);
    if (p == lineEnd) return true;
    return *p == comment || *p == '%';
}

/// A half-open byte range of the input.
struct Chunk {
    const char* begin;
    const char* end;
};

/// Split [begin, end) into at most `pieces` newline-aligned chunks: every
/// chunk starts right after a '\n' (or at begin) and ends right after a
/// '\n' (or at end), so no line straddles two chunks. Chunks concatenate
/// to exactly the input in order, which is what makes the parallel parse
/// independent of the chunk count. Some chunks may be empty when lines
/// are long relative to the input.
inline std::vector<Chunk> splitLineChunks(const char* begin, const char* end,
                                          int pieces) {
    std::vector<Chunk> chunks;
    if (pieces < 1) pieces = 1;
    const std::size_t size = static_cast<std::size_t>(end - begin);
    const char* cursor = begin;
    for (int i = 1; i <= pieces && cursor < end; ++i) {
        const char* target = begin + size * static_cast<std::size_t>(i) /
                                         static_cast<std::size_t>(pieces);
        if (i == pieces) {
            target = end;
        } else {
            if (target < cursor) target = cursor;
            target = findLineEnd(target, end);
            if (target < end) ++target; // include the newline
        }
        if (target > cursor) {
            chunks.push_back({cursor, target});
            cursor = target;
        }
    }
    if (cursor < end) chunks.push_back({cursor, end});
    return chunks;
}

/// 1-based line number of byte `offset` in [data, data+size): one plus
/// the number of newlines before it. Only used on error paths.
inline count lineOfOffset(const char* data, std::size_t size,
                          std::size_t offset) noexcept {
    if (offset > size) offset = size;
    count line = 1;
    const char* p = data;
    const char* const stop = data + offset;
    while (p < stop) {
        const void* nl =
            std::memchr(p, '\n', static_cast<std::size_t>(stop - p));
        if (!nl) break;
        ++line;
        p = static_cast<const char*>(nl) + 1;
    }
    return line;
}

/// Shortest decimal form of w that parses back to exactly w
/// (std::to_chars shortest round-trip; "2" for 2.0, "0.1" for 0.1).
/// The writers use this so weighted round trips are bit-exact.
inline std::string formatWeight(double w) {
    char buffer[32];
    const auto [next, ec] = std::to_chars(buffer, buffer + sizeof buffer, w);
    if (ec != std::errc()) return std::to_string(w); // unreachable for finite w
    return std::string(buffer, next);
}

} // namespace grapr::io::scan
