#pragma once
// Partition I/O: one community id per line, line i = node i. The format
// used by DIMACS-challenge clustering tools, enabling external validation
// of grapr solutions (and vice versa).

#include <string>

#include "structures/partition.hpp"

namespace grapr::io {

void writePartition(const Partition& zeta, const std::string& path);

Partition readPartition(const std::string& path);

} // namespace grapr::io
