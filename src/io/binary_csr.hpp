#pragma once
// Binary CSR checkpoint format ("GCSR") — the on-disk twin of a frozen
// CsrGraph, used by StreamingGraph durability as the checkpoint the WAL
// tail replays against, and the seed of the ROADMAP CSR-on-disk format.
//
// Layout (native byte order, same policy as the GRPR binary graph
// format — a checkpoint is a local durability artifact, not an
// interchange file; 8-byte-aligned arrays):
//
//   offset  size                 field
//   0       4                    magic "GCSR"
//   4       4   u32              format version (1)
//   8       8   u64              stream generation the arrays represent
//   16      8   u64              bound     = upperNodeIdBound()
//   24      8   u64              halfEdges = offsets[bound]
//   32      1   u8               weighted flag
//   33      7                    zero padding
//   40      8*(bound+1)  u64[]   offsets
//   ...     4*halfEdges  u32[]   neighbors
//   ...     0 or 4               zero padding to 8-byte alignment
//   ...     8*halfEdges  f64[]   weights          (weighted files only)
//   end-4   4   u32              CRC-32 of everything before it
//
// A checkpoint is written ATOMICALLY: the bytes go to `<path>.tmp` in the
// same directory, are fsync'd, and only then rename()d over `path`
// (followed by an fsync of the directory). A crash mid-write leaves at
// most a stale .tmp file, never a half-written checkpoint under the
// final name; the trailing CRC makes any surviving file verifiably
// complete or rejected as a whole.
//
// Loading goes through MappedFile, so a reopen is zero-parse: headers
// are validated, the CRC is checked, and the arrays are copied straight
// out of the mapping into the CsrGraph vectors.

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"

namespace grapr::io {

/// A loaded checkpoint: the frozen arrays plus the stream generation
/// they represent.
struct BinaryCsrSnapshot {
    CsrGraph graph;
    std::uint64_t generation = 0;
};

/// Write `g` (tagged with `generation`) to `path` atomically. Throws
/// IoError (with path and byte offset) on any I/O failure; a failed
/// write never disturbs an existing file at `path`.
void writeBinaryCsr(const CsrGraph& g, std::uint64_t generation,
                    const std::string& path);

/// Load a checkpoint written by writeBinaryCsr. Throws IoError when the
/// file is missing, truncated, version-mismatched, structurally invalid,
/// or fails its CRC.
BinaryCsrSnapshot readBinaryCsr(const std::string& path);

} // namespace grapr::io
