#pragma once
// Compact binary graph format for fast reload of generated benchmark
// instances (the replica suite is generated once and cached on disk so the
// per-figure benches measure algorithms, not generators).
//
// Layout (little endian, no padding):
//   magic "GRPR" | u32 version | u8 weighted | u64 n | u64 m
//   m × { u32 u, u32 v }            each undirected edge once (u <= v)
//   m × f64 weight                  only when weighted
// Loaded through GraphBuilder, so reading is parallel after the raw fread.

#include <string>

#include "graph/graph.hpp"

namespace grapr::io {

void writeBinary(const Graph& g, const std::string& path);

Graph readBinary(const std::string& path);

} // namespace grapr::io
