#pragma once
// Parallel edge-list ingestion straight to CSR.
//
// The file is memory-mapped (mapped_file.hpp), split into newline-aligned
// chunks, and the chunks are tokenised in parallel with the allocation-free
// scanner (text_scanner.hpp). The parsed edges then flow into a CsrGraph
// through a two-pass build — per-chunk degree count, prefix sum, parallel
// scatter — with no intermediate adjacency-list Graph. Because chunk
// results are stitched in file order, the resulting CsrGraph (offsets,
// neighbor order, weights) is bit-identical for every thread count,
// including 1 (asserted by tests/test_parallel_io.cpp).
//
// Malformed input throws io::IoError with the exact line and byte offset
// (strict mode, the default) or is skipped with one summary warning
// (permissive mode). See ParseOptions for the full knob list.

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "io/parse_options.hpp"

namespace grapr::io {

/// Read a whitespace-separated edge list ("u v [w]" per line) from `path`
/// into a frozen CsrGraph. If `originalIds` is non-null it receives the
/// original raw id of every node (first-appearance order when remapping,
/// identity otherwise).
CsrGraph readEdgeListCsr(const std::string& path,
                         const ParseOptions& options = {},
                         std::vector<std::uint64_t>* originalIds = nullptr);

/// Same parser over an in-memory buffer (`name` is used in error
/// messages). This is the entry point the fuzz tests drive.
CsrGraph parseEdgeListCsr(const char* data, std::size_t size,
                          const std::string& name,
                          const ParseOptions& options = {},
                          std::vector<std::uint64_t>* originalIds = nullptr);

} // namespace grapr::io
