#pragma once
// ParseOptions — the one knob struct shared by the parallel text parsers
// (parallel_edgelist.hpp, parallel_metis.hpp) and the legacy-compatible
// wrappers readEdgeList/readMetis that route through them.

#include "support/common.hpp"

namespace grapr::io {

struct ParseOptions {
    /// Worker threads (and newline-aligned chunks) used for parsing.
    /// 0 = the current OpenMP thread count. The parsed graph is
    /// bit-identical for every thread count (chunk results are stitched
    /// in file order).
    int threads = 0;

    /// Edge list: expect a third column with edge weights.
    /// METIS: ignored (the header's fmt field decides).
    bool weighted = false;

    /// Edge list: treat (u,v) and (v,u) as the same undirected edge and
    /// collapse parallel duplicates, keeping the first instance's weight
    /// (directed inputs list most edges twice).
    bool directedInput = false;

    /// Comment character for edge lists; '%' is always also accepted
    /// (SNAP uses '#', DIMACS/METIS use '%').
    char comment = '#';

    /// Subtract this from every raw edge-list node id (1 for 1-indexed
    /// foreign files). An id below the base is a parse error. METIS ids
    /// are 1-based by definition; this option does not apply there.
    std::uint64_t indexBase = 0;

    /// strict: every malformed token, out-of-range id, or header/content
    /// disagreement throws IoError with the exact line and byte offset.
    /// permissive (false): recoverable problems (malformed lines, junk
    /// tokens, declared-vs-actual count mismatches) are skipped/tolerated
    /// with one summary logWarn; structurally unrecoverable input still
    /// throws IoError.
    bool strict = true;

    /// Edge list without a "grapr edge list: n=" header: remap sparse raw
    /// ids to consecutive ids in first-appearance order (the legacy
    /// reader's behaviour). With remapIds=false, ids are used directly
    /// (after indexBase) and n = max id + 1.
    bool remapIds = true;
};

} // namespace grapr::io
