#include "io/metis_io.hpp"

#include <fstream>

#include "io/parallel_metis.hpp"
#include "io/text_scanner.hpp"

namespace grapr::io {

Graph readMetis(const std::string& path) {
    ParseOptions options;
    options.strict = false;
    return readMetis(path, options);
}

Graph readMetis(const std::string& path, const ParseOptions& options) {
    // Parallel mmap pipeline straight to CSR, thawed once for this
    // adjacency-list-returning API. Adjacency order now matches the file
    // rows verbatim (the legacy reader reinserted edges smaller-endpoint
    // first); the edge set is identical.
    return readMetisCsr(path, options).toGraph();
}

void writeMetis(const Graph& g, const std::string& path) {
    require(g.upperNodeIdBound() == g.numberOfNodes(),
            "writeMetis: compact the graph first (no removed node ids)");
    std::ofstream out(path);
    if (!out) fail("writeMetis: cannot open " + path);
    const bool weighted = g.isWeighted();
    out << g.numberOfNodes() << ' ' << g.numberOfEdges();
    if (weighted) out << " 1";
    out << '\n';
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        bool first = true;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (!first) out << ' ';
            first = false;
            out << (v + 1);
            // Shortest round-trip form: re-reading restores w bit-exactly.
            if (weighted) out << ' ' << scan::formatWeight(w);
        });
        out << '\n';
    }
    if (!out) fail("writeMetis: write error on " + path);
}

} // namespace grapr::io
