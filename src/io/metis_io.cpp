#include "io/metis_io.hpp"

#include <fstream>
#include <ios>

#include "io/io_error.hpp"
#include "io/parallel_metis.hpp"
#include "io/text_scanner.hpp"
#include "support/fault.hpp"

namespace grapr::io {

Graph readMetis(const std::string& path) {
    ParseOptions options;
    options.strict = false;
    return readMetis(path, options);
}

Graph readMetis(const std::string& path, const ParseOptions& options) {
    // Parallel mmap pipeline straight to CSR, thawed once for this
    // adjacency-list-returning API. Adjacency order now matches the file
    // rows verbatim (the legacy reader reinserted edges smaller-endpoint
    // first); the edge set is identical.
    return readMetisCsr(path, options).toGraph();
}

void writeMetis(const Graph& g, const std::string& path) {
    require(g.upperNodeIdBound() == g.numberOfNodes(),
            "writeMetis: compact the graph first (no removed node ids)");
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError(path, 0, 0, "writeMetis: cannot open for writing");
    // Same short-write discipline as writeEdgeList: report structured
    // IoErrors with the last known-good byte offset instead of silently
    // dropping ENOSPC/flush/close failures.
    count lastGood = 0;
    const auto checkStream = [&](const char* what) {
        if (!out) throw IoError(path, 0, lastGood, std::string(what) +
                                " failed (disk full?)");
        lastGood = static_cast<count>(out.tellp());
    };
    const bool weighted = g.isWeighted();
    out << g.numberOfNodes() << ' ' << g.numberOfEdges();
    if (weighted) out << " 1";
    out << '\n';
    checkStream("writeMetis: header write");
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        if (GRAPR_FAULT_INJECT("io.write.metis")) {
            out.setstate(std::ios::badbit); // simulated ENOSPC
        }
        bool first = true;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (!first) out << ' ';
            first = false;
            out << (v + 1);
            // Shortest round-trip form: re-reading restores w bit-exactly.
            if (weighted) out << ' ' << scan::formatWeight(w);
        });
        out << '\n';
        if ((u & 1023u) == 0) checkStream("writeMetis: row write");
    }
    out.flush();
    checkStream("writeMetis: flush");
    out.close();
    if (out.fail()) {
        throw IoError(path, 0, lastGood, "writeMetis: close failed");
    }
}

} // namespace grapr::io
