#include "io/metis_io.hpp"

#include <fstream>
#include <sstream>

#include "support/logging.hpp"

namespace grapr::io {

Graph readMetis(const std::string& path) {
    std::ifstream in(path);
    if (!in) fail("readMetis: cannot open " + path);

    std::string line;
    // Header: skip comment lines (starting with '%').
    count n = 0, m = 0;
    int fmt = 0;
    for (;;) {
        if (!std::getline(in, line)) fail("readMetis: missing header in " + path);
        if (!line.empty() && line[0] == '%') continue;
        std::istringstream header(line);
        if (!(header >> n >> m)) fail("readMetis: malformed header in " + path);
        header >> fmt; // optional; 0 if absent
        break;
    }
    const bool hasEdgeWeights = (fmt % 10) == 1;
    require(fmt == 0 || fmt == 1,
            "readMetis: only fmt 0 (plain) and 1 (edge weights) supported");

    Graph g(n, hasEdgeWeights);
    count vertex = 0;
    count edgesSeen = 0;
    while (vertex < n && std::getline(in, line)) {
        if (!line.empty() && line[0] == '%') continue;
        const node u = static_cast<node>(vertex);
        ++vertex;
        std::istringstream fields(line);
        count neighbor1Based;
        while (fields >> neighbor1Based) {
            require(neighbor1Based >= 1 && neighbor1Based <= n,
                    "readMetis: neighbor id out of range");
            const node v = static_cast<node>(neighbor1Based - 1);
            edgeweight w = 1.0;
            if (hasEdgeWeights) {
                if (!(fields >> w)) fail("readMetis: missing edge weight");
            }
            // Every edge appears in both endpoint lines; insert on the
            // lexicographically smaller side. Self-loops appear once per
            // mention; METIS does not normally contain them, but tolerate.
            if (v > u) {
                g.addEdge(u, v, w);
                ++edgesSeen;
            } else if (v == u) {
                g.addEdge(u, v, w);
                ++edgesSeen;
            }
        }
    }
    require(vertex == n, "readMetis: fewer adjacency lines than nodes");
    if (edgesSeen != m) {
        // Tolerate: some DIMACS files count self-loops differently. The
        // graph as parsed is still consistent.
        logWarn("readMetis: header declares ", m, " edges but ", edgesSeen,
                " were parsed (", path, ")");
    }
    return g;
}

void writeMetis(const Graph& g, const std::string& path) {
    require(g.upperNodeIdBound() == g.numberOfNodes(),
            "writeMetis: compact the graph first (no removed node ids)");
    std::ofstream out(path);
    if (!out) fail("writeMetis: cannot open " + path);
    const bool weighted = g.isWeighted();
    out << g.numberOfNodes() << ' ' << g.numberOfEdges();
    if (weighted) out << " 1";
    out << '\n';
    for (node u = 0; u < g.numberOfNodes(); ++u) {
        bool first = true;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (!first) out << ' ';
            first = false;
            out << (v + 1);
            if (weighted) out << ' ' << w;
        });
        out << '\n';
    }
    if (!out) fail("writeMetis: write error on " + path);
}

} // namespace grapr::io
