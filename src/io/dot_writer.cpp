#include "io/dot_writer.hpp"

#include <cmath>
#include <fstream>

namespace grapr::io {

void writeDot(const Graph& g, const std::string& path) {
    std::ofstream out(path);
    if (!out) fail("writeDot: cannot open " + path);
    out << "graph G {\n";
    g.forEdges([&](node u, node v, edgeweight w) {
        out << "  " << u << " -- " << v;
        if (g.isWeighted()) out << " [label=\"" << w << "\"]";
        out << ";\n";
    });
    out << "}\n";
    if (!out) fail("writeDot: write error on " + path);
}

void writeCommunityGraphDot(const Graph& communityGraph,
                            const std::vector<count>& communitySizes,
                            const std::string& path) {
    require(communitySizes.size() >= communityGraph.numberOfNodes(),
            "writeCommunityGraphDot: size array too small");
    std::ofstream out(path);
    if (!out) fail("writeCommunityGraphDot: cannot open " + path);
    out << "graph communities {\n"
        << "  node [shape=circle, style=filled, fillcolor=lightsteelblue];\n";
    communityGraph.forNodes([&](node c) {
        const double size = static_cast<double>(communitySizes[c]);
        const double width = 0.2 + 0.25 * std::log2(1.0 + size);
        out << "  " << c << " [label=\"" << communitySizes[c]
            << "\", width=" << width << "];\n";
    });
    communityGraph.forEdges([&](node a, node b, edgeweight w) {
        if (a == b) return; // intra-community weight not drawn
        const double penwidth = 0.5 + std::log2(1.0 + w) / 4.0;
        out << "  " << a << " -- " << b << " [penwidth=" << penwidth << "];\n";
    });
    out << "}\n";
    if (!out) fail("writeCommunityGraphDot: write error on " + path);
}

} // namespace grapr::io
