#pragma once
// Parallel METIS-format ingestion straight to CSR.
//
// METIS bodies are line-per-vertex, so the newline-aligned chunks of the
// mapped file are also vertex-aligned: pass 1 counts rows and per-row
// adjacency entries per chunk (establishing each chunk's first vertex id
// and the CSR offsets via prefix sum), pass 2 re-tokenises and writes the
// entries into their final slots. Both passes share one row scanner, so
// they agree token for token, and chunk stitching is in file order — the
// resulting CsrGraph is bit-identical for every thread count.
//
// Supported header: "n m [fmt]" with fmt 0 (plain) or 1 (edge weights),
// as in metis_io.hpp. Structural violations (bad header, out-of-range
// neighbor ids, missing rows, asymmetric adjacency) throw io::IoError in
// both modes; junk tokens and a header edge count that disagrees with the
// edges actually read throw in strict mode and are warned about in
// permissive mode.

#include <cstddef>
#include <string>

#include "graph/csr_graph.hpp"
#include "io/parse_options.hpp"

namespace grapr::io {

/// Read a METIS graph file into a frozen CsrGraph. `options.weighted` is
/// ignored (the header's fmt field decides).
CsrGraph readMetisCsr(const std::string& path,
                      const ParseOptions& options = {});

/// Same parser over an in-memory buffer (`name` is used in error
/// messages). This is the entry point the fuzz tests drive.
CsrGraph parseMetisCsr(const char* data, std::size_t size,
                       const std::string& name,
                       const ParseOptions& options = {});

} // namespace grapr::io
