#include "io/parallel_edgelist.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include <omp.h>

#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "io/text_scanner.hpp"
#include "support/logging.hpp"
#include "support/parallel.hpp"

namespace grapr::io {

namespace {

struct RawEdge {
    std::uint64_t u;
    std::uint64_t v;
    double w;
};

/// First error seen by one chunk; the chunk stops parsing once set, and
/// the post-parallel sweep reports the error of the earliest chunk —
/// which is the first malformed line in file order, independent of the
/// chunk count.
struct ChunkError {
    bool set = false;
    std::size_t offset = 0;
    const char* message = nullptr;

    void record(std::size_t off, const char* msg) {
        if (set) return;
        set = true;
        offset = off;
        message = msg;
    }
};

struct EdgeChunk {
    std::vector<RawEdge> edges;
    ChunkError error;
    count skipped = 0; // permissive-mode dropped lines
};

int resolveThreads(const ParseOptions& options) {
    return options.threads > 0 ? options.threads : omp_get_max_threads();
}

constexpr char kHeaderMarker[] = "grapr edge list: n=";

/// Scan the leading comment/blank block for the writeEdgeList header that
/// pins the node count (so isolated nodes and raw ids survive the round
/// trip). Runs before the parallel phase so every chunk can validate ids
/// against the declared bound.
bool scanDeclaredN(const char* data, const char* end, char comment,
                   std::uint64_t& declaredN) {
    const std::size_t markerLen = std::strlen(kHeaderMarker);
    const char* p = data;
    while (p < end) {
        const char* lineEnd = scan::findLineEnd(p, end);
        if (!scan::isCommentOrBlank(p, lineEnd, comment)) return false;
        const char* found =
            std::search(p, lineEnd, kHeaderMarker, kHeaderMarker + markerLen);
        if (found != lineEnd) {
            const char* q = found + markerLen;
            if (scan::parseU64(q, lineEnd, declaredN)) return true;
        }
        p = lineEnd < end ? lineEnd + 1 : end;
    }
    return false;
}

void parseChunk(const scan::Chunk& chunk, const char* data,
                const ParseOptions& options, bool haveDeclaredN,
                std::uint64_t declaredN, EdgeChunk& out) {
    const char* p = chunk.begin;
    while (p < chunk.end) {
        const char* lineEnd = scan::findLineEnd(p, chunk.end);
        const char* next = lineEnd < chunk.end ? lineEnd + 1 : chunk.end;
        if (scan::isCommentOrBlank(p, lineEnd, options.comment)) {
            p = next;
            continue;
        }

        const char* q = p;
        scan::skipSpace(q, lineEnd);
        std::uint64_t u = 0, v = 0;
        double w = 1.0;
        std::size_t errorOffset = 0;
        const char* errorMessage = nullptr;
        const char* tokenStart = q;
        if (!scan::parseU64(q, lineEnd, u)) {
            errorOffset = static_cast<std::size_t>(tokenStart - data);
            errorMessage = "malformed node id (expected unsigned integer)";
        } else {
            scan::skipSpace(q, lineEnd);
            tokenStart = q;
            if (!scan::parseU64(q, lineEnd, v)) {
                errorOffset = static_cast<std::size_t>(tokenStart - data);
                errorMessage = "malformed line (expected two node ids)";
            } else if (options.weighted) {
                scan::skipSpace(q, lineEnd);
                tokenStart = q;
                if (!scan::parseDouble(q, lineEnd, w)) {
                    errorOffset = static_cast<std::size_t>(tokenStart - data);
                    errorMessage = "missing or malformed edge weight";
                }
            }
        }
        if (!errorMessage) {
            if (u < options.indexBase || v < options.indexBase) {
                errorOffset = static_cast<std::size_t>(p - data);
                errorMessage = "node id below the configured index base";
            } else {
                u -= options.indexBase;
                v -= options.indexBase;
                if (haveDeclaredN && (u >= declaredN || v >= declaredN)) {
                    errorOffset = static_cast<std::size_t>(p - data);
                    errorMessage = "node id exceeds the declared node count";
                }
            }
        }

        if (!errorMessage) {
            out.edges.push_back({u, v, w});
        } else if (options.strict) {
            out.error.record(errorOffset, errorMessage);
            return;
        } else {
            ++out.skipped;
        }
        p = next;
    }
}

/// Assemble symmetric CSR arrays from the per-chunk edge vectors: count
/// degrees per (chunk, row), prefix-sum into absolute row offsets plus a
/// per-chunk start cursor per row, then scatter. Entry order within a row
/// equals file order of the incident edges, so the result is independent
/// of the chunk/thread count.
CsrGraph assembleCsr(std::vector<EdgeChunk>& chunks, count n, bool weighted,
                     int threads, const std::string& name) {
    const int numChunks = static_cast<int>(chunks.size());
    std::vector<std::vector<index>> chunkDeg(chunks.size());
#pragma omp parallel for default(none) shared(chunks, chunkDeg, numChunks, n) \
    num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        auto& deg = chunkDeg[static_cast<std::size_t>(c)];
        deg.assign(n, 0);
        for (const RawEdge& e : chunks[static_cast<std::size_t>(c)].edges) {
            ++deg[e.u];
            if (e.u != e.v) ++deg[e.v];
        }
    }

    std::vector<count> degrees(n, 0);
    const auto sn = static_cast<std::int64_t>(n);
#pragma omp parallel for default(none)                                       \
    shared(chunkDeg, degrees, numChunks, sn) num_threads(threads)            \
    schedule(static)
    for (std::int64_t v = 0; v < sn; ++v) {
        count total = 0;
        for (int c = 0; c < numChunks; ++c) {
            total += chunkDeg[static_cast<std::size_t>(c)]
                             [static_cast<std::size_t>(v)];
        }
        degrees[static_cast<std::size_t>(v)] = total;
    }
    const count entries = Parallel::prefixSum(degrees);

    std::vector<index> offsets(n + 1);
    offsets[n] = entries;
    // Turn each chunk's degree count into the absolute start offset of
    // that chunk's slice of the row.
#pragma omp parallel for default(none)                                       \
    shared(chunkDeg, degrees, offsets, numChunks, sn) num_threads(threads)   \
    schedule(static)
    for (std::int64_t v = 0; v < sn; ++v) {
        const auto uv = static_cast<std::size_t>(v);
        offsets[uv] = degrees[uv];
        index running = degrees[uv];
        for (int c = 0; c < numChunks; ++c) {
            auto& slot = chunkDeg[static_cast<std::size_t>(c)][uv];
            const index width = slot;
            slot = running;
            running += width;
        }
    }

    std::vector<node> neighbors(entries);
    std::vector<edgeweight> weights(weighted ? entries : 0);
#pragma omp parallel for default(none)                                       \
    shared(chunks, chunkDeg, neighbors, weights, weighted, numChunks)        \
    num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        auto& cursor = chunkDeg[static_cast<std::size_t>(c)];
        for (const RawEdge& e : chunks[static_cast<std::size_t>(c)].edges) {
            index slot = cursor[e.u]++;
            neighbors[slot] = static_cast<node>(e.v);
            if (weighted) weights[slot] = e.w;
            if (e.u != e.v) {
                slot = cursor[e.v]++;
                neighbors[slot] = static_cast<node>(e.u);
                if (weighted) weights[slot] = e.w;
            }
        }
    }

    try {
        return CsrGraph(std::move(offsets), std::move(neighbors),
                        std::move(weights), weighted);
    } catch (const std::exception& e) {
        throw IoError(name, 0, 0,
                      std::string("inconsistent graph structure: ") + e.what());
    }
}

/// Stable per-row dedup for directed inputs: keep the first instance of
/// every neighbor (file order), drop the rest. Symmetric because both
/// endpoint rows receive their entries in the same global edge order.
void dedupRows(std::vector<index>& offsets, std::vector<node>& neighbors,
               std::vector<edgeweight>& weights, bool weighted, int threads) {
    const count n = offsets.size() - 1;
    std::vector<count> newDeg(n, 0);
    const auto sn = static_cast<std::int64_t>(n);
#pragma omp parallel default(none)                                           \
    shared(offsets, neighbors, weights, newDeg, weighted, sn, n)             \
    num_threads(threads)
    {
        // Timestamped per-thread "seen" set: O(deg) per row, no clearing.
        std::vector<index> stamp(n, 0);
        index generation = 0;
#pragma omp for schedule(guided)
        for (std::int64_t sv = 0; sv < sn; ++sv) {
            const auto v = static_cast<std::size_t>(sv);
            ++generation;
            index write = offsets[v];
            for (index i = offsets[v]; i < offsets[v + 1]; ++i) {
                const node u = neighbors[i];
                if (stamp[u] == generation) continue;
                stamp[u] = generation;
                // grapr:lint-allow(benign-race): in-place compaction of row
                // v — write <= i stays inside [offsets[v], offsets[v+1]),
                // and rows are disjoint across threads.
                // grapr:analyze-allow(shared-write-safety): the "foreign"
                // read neighbors[i] is this thread's own row scan (write
                // <= i within the same slice) — in-place compaction is
                // beyond the effect lattice.
                neighbors[write] = u;
                // grapr:lint-allow(benign-race): same in-row compaction.
                // grapr:analyze-allow(shared-write-safety): same in-row
                // compaction; weights[i] is read within the owned slice.
                if (weighted) weights[write] = weights[i];
                ++write;
            }
            newDeg[v] = write - offsets[v];
        }
    }

    std::vector<count> prefix = newDeg;
    const count total = Parallel::prefixSum(prefix);
    std::vector<index> packedOffsets(n + 1);
    packedOffsets[n] = total;
    std::vector<node> packedNeighbors(total);
    std::vector<edgeweight> packedWeights(weighted ? total : 0);
#pragma omp parallel for default(none)                                       \
    shared(offsets, neighbors, weights, prefix, newDeg, packedOffsets,       \
               packedNeighbors, packedWeights, weighted, sn)                 \
    num_threads(threads) schedule(guided)
    for (std::int64_t sv = 0; sv < sn; ++sv) {
        const auto v = static_cast<std::size_t>(sv);
        packedOffsets[v] = prefix[v];
        for (index i = 0; i < newDeg[v]; ++i) {
            packedNeighbors[prefix[v] + i] = neighbors[offsets[v] + i];
            if (weighted) packedWeights[prefix[v] + i] = weights[offsets[v] + i];
        }
    }
    offsets = std::move(packedOffsets);
    neighbors = std::move(packedNeighbors);
    weights = std::move(packedWeights);
}

} // namespace

CsrGraph parseEdgeListCsr(const char* data, std::size_t size,
                          const std::string& name,
                          const ParseOptions& options,
                          std::vector<std::uint64_t>* originalIds) {
    const char* const end = data + size;
    const int threads = resolveThreads(options);

    std::uint64_t declaredN = 0;
    const bool haveDeclaredN =
        scanDeclaredN(data, end, options.comment, declaredN);
    if (haveDeclaredN && declaredN > static_cast<std::uint64_t>(none)) {
        throw IoError(name, 1, 0,
                      "declared node count exceeds the 32-bit id space");
    }

    const std::vector<scan::Chunk> ranges =
        scan::splitLineChunks(data, end, threads);
    std::vector<EdgeChunk> chunks(ranges.size());
    const int numChunks = static_cast<int>(ranges.size());
#pragma omp parallel for default(none)                                       \
    shared(ranges, chunks, data, options, haveDeclaredN, declaredN,          \
               numChunks) num_threads(threads) schedule(static, 1)
    for (int c = 0; c < numChunks; ++c) {
        parseChunk(ranges[static_cast<std::size_t>(c)], data, options,
                   haveDeclaredN, declaredN,
                   chunks[static_cast<std::size_t>(c)]);
    }

    count skipped = 0;
    for (const EdgeChunk& chunk : chunks) {
        if (chunk.error.set) {
            throw IoError(name,
                          scan::lineOfOffset(data, size, chunk.error.offset),
                          chunk.error.offset, chunk.error.message);
        }
        skipped += chunk.skipped;
    }
    if (skipped > 0) {
        logWarn("readEdgeList: skipped ", skipped, " malformed line(s) in ",
                name);
    }

    // Resolve node ids: declared bound > first-appearance remap > direct.
    count n = 0;
    std::vector<std::uint64_t> original;
    if (haveDeclaredN) {
        n = static_cast<count>(declaredN);
    } else if (options.remapIds) {
        std::unordered_map<std::uint64_t, node> remap;
        count totalEdges = 0;
        for (const EdgeChunk& chunk : chunks) {
            totalEdges += chunk.edges.size();
        }
        remap.reserve(totalEdges);
        // Sequential over chunks in file order: first-appearance numbering
        // must match the single-threaded reader exactly.
        for (EdgeChunk& chunk : chunks) {
            for (RawEdge& e : chunk.edges) {
                for (std::uint64_t* id : {&e.u, &e.v}) {
                    auto [it, inserted] = remap.emplace(
                        *id, static_cast<node>(original.size()));
                    if (inserted) {
                        if (original.size() >=
                            static_cast<std::size_t>(none)) {
                            throw IoError(name, 0, size,
                                          "more distinct node ids than the "
                                          "32-bit id space holds");
                        }
                        original.push_back(*id);
                    }
                    *id = it->second;
                }
            }
        }
        n = original.size();
    } else {
        std::uint64_t maxId = 0;
        bool any = false;
        for (const EdgeChunk& chunk : chunks) {
            for (const RawEdge& e : chunk.edges) {
                maxId = std::max({maxId, e.u, e.v});
                any = true;
            }
        }
        if (any && maxId >= static_cast<std::uint64_t>(none)) {
            throw IoError(name, 0, size,
                          "node id exceeds the 32-bit id space");
        }
        n = any ? static_cast<count>(maxId) + 1 : 0;
    }

    CsrGraph graph = [&] {
        if (!options.directedInput) {
            return assembleCsr(chunks, n, options.weighted, threads, name);
        }
        // Dedup path: assemble with duplicates, then compact per row.
        CsrGraph withDuplicates =
            assembleCsr(chunks, n, options.weighted, threads, name);
        std::vector<index> offsets = withDuplicates.offsets();
        std::vector<node> neighbors = withDuplicates.neighborArray();
        std::vector<edgeweight> weights = withDuplicates.weightArray();
        dedupRows(offsets, neighbors, weights, options.weighted, threads);
        return CsrGraph(std::move(offsets), std::move(neighbors),
                        std::move(weights), options.weighted);
    }();

    if (originalIds) {
        if (haveDeclaredN || !options.remapIds) {
            original.resize(n);
            for (count v = 0; v < n; ++v) original[v] = v;
        }
        *originalIds = std::move(original);
    }
    return graph;
}

CsrGraph readEdgeListCsr(const std::string& path, const ParseOptions& options,
                         std::vector<std::uint64_t>* originalIds) {
    MappedFile file(path);
    return parseEdgeListCsr(file.data(), file.size(), path, options,
                            originalIds);
}

} // namespace grapr::io
