#include "io/binary_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/graph_builder.hpp"

namespace grapr::io {

namespace {

constexpr char kMagic[4] = {'G', 'R', 'P', 'R'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
    void operator()(std::FILE* f) const {
        if (f) std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void writeRaw(std::FILE* f, const T& value) {
    if (std::fwrite(&value, sizeof(T), 1, f) != 1) fail("writeBinary: I/O error");
}

template <typename T>
void writeArray(std::FILE* f, const std::vector<T>& values) {
    if (values.empty()) return;
    if (std::fwrite(values.data(), sizeof(T), values.size(), f) !=
        values.size()) {
        fail("writeBinary: I/O error");
    }
}

template <typename T>
T readRaw(std::FILE* f) {
    T value;
    if (std::fread(&value, sizeof(T), 1, f) != 1) fail("readBinary: I/O error");
    return value;
}

template <typename T>
std::vector<T> readArray(std::FILE* f, std::size_t n) {
    std::vector<T> values(n);
    if (n != 0 && std::fread(values.data(), sizeof(T), n, f) != n) {
        fail("readBinary: truncated file");
    }
    return values;
}

} // namespace

void writeBinary(const Graph& g, const std::string& path) {
    require(g.upperNodeIdBound() == g.numberOfNodes(),
            "writeBinary: compact the graph first");
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) fail("writeBinary: cannot open " + path);

    std::fwrite(kMagic, 1, 4, f.get());
    writeRaw(f.get(), kVersion);
    writeRaw(f.get(), static_cast<std::uint8_t>(g.isWeighted() ? 1 : 0));
    writeRaw(f.get(), static_cast<std::uint64_t>(g.numberOfNodes()));
    writeRaw(f.get(), static_cast<std::uint64_t>(g.numberOfEdges()));

    std::vector<std::uint32_t> endpoints;
    endpoints.reserve(2 * g.numberOfEdges());
    std::vector<double> weights;
    if (g.isWeighted()) weights.reserve(g.numberOfEdges());
    g.forEdges([&](node u, node v, edgeweight w) {
        endpoints.push_back(u);
        endpoints.push_back(v);
        if (g.isWeighted()) weights.push_back(w);
    });
    writeArray(f.get(), endpoints);
    writeArray(f.get(), weights);
    if (std::ferror(f.get())) fail("writeBinary: write error on " + path);
}

Graph readBinary(const std::string& path) {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) fail("readBinary: cannot open " + path);

    char magic[4];
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        fail("readBinary: not a grapr binary graph: " + path);
    }
    const auto version = readRaw<std::uint32_t>(f.get());
    require(version == kVersion, "readBinary: unsupported version");
    const bool weighted = readRaw<std::uint8_t>(f.get()) != 0;
    const auto n = readRaw<std::uint64_t>(f.get());
    const auto m = readRaw<std::uint64_t>(f.get());

    const auto endpoints = readArray<std::uint32_t>(f.get(), 2 * m);
    const auto weights =
        weighted ? readArray<double>(f.get(), m) : std::vector<double>{};

    GraphBuilder builder(n, weighted);
    for (std::size_t i = 0; i < m; ++i) {
        builder.addEdge(endpoints[2 * i], endpoints[2 * i + 1],
                        weighted ? weights[i] : 1.0);
    }
    return builder.build();
}

} // namespace grapr::io
