#include "io/gml_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "graph/graph_builder.hpp"

namespace grapr::io {

void writeGml(const Graph& g, const std::string& path,
              const Partition* communities) {
    std::ofstream out(path);
    if (!out) fail("writeGml: cannot open " + path);
    out << "graph [\n  directed 0\n";
    g.forNodes([&](node v) {
        out << "  node [\n    id " << v;
        if (communities && (*communities)[v] != none) {
            out << "\n    community " << (*communities)[v];
        }
        out << "\n  ]\n";
    });
    g.forEdges([&](node u, node v, edgeweight w) {
        out << "  edge [\n    source " << u << "\n    target " << v;
        if (g.isWeighted()) out << "\n    weight " << w;
        out << "\n  ]\n";
    });
    out << "]\n";
    if (!out) fail("writeGml: write error on " + path);
}

namespace {

/// Minimal GML tokenizer: keys, numbers, strings, brackets.
struct GmlParser {
    std::istringstream in;

    explicit GmlParser(std::string text) : in(std::move(text)) {}

    bool next(std::string& token) {
        char c;
        // skip whitespace
        while (in.get(c)) {
            if (!std::isspace(static_cast<unsigned char>(c))) break;
        }
        if (!in) return false;
        token.clear();
        if (c == '[' || c == ']') {
            token = c;
            return true;
        }
        if (c == '"') {
            while (in.get(c) && c != '"') token += c;
            return true;
        }
        token += c;
        while (in.get(c)) {
            if (std::isspace(static_cast<unsigned char>(c)) || c == '[' ||
                c == ']') {
                if (c == '[' || c == ']') in.unget();
                break;
            }
            token += c;
        }
        return true;
    }
};

} // namespace

Graph readGml(const std::string& path) {
    std::ifstream file(path);
    if (!file) fail("readGml: cannot open " + path);
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    GmlParser parser(std::move(text));

    std::unordered_map<long long, node> remap;
    struct RawEdge {
        long long source = -1;
        long long target = -1;
        double weight = 1.0;
    };
    std::vector<RawEdge> edges;
    bool anyWeight = false;

    std::string token;
    // State machine over node [...] / edge [...] blocks.
    while (parser.next(token)) {
        if (token == "node") {
            require(parser.next(token) && token == "[",
                    "readGml: expected [ after node");
            long long id = -1;
            int depth = 1;
            while (depth > 0 && parser.next(token)) {
                if (token == "[") {
                    ++depth;
                } else if (token == "]") {
                    --depth;
                } else if (token == "id" && depth == 1) {
                    require(parser.next(token), "readGml: missing node id");
                    id = std::stoll(token);
                }
            }
            require(id >= 0, "readGml: node without id");
            remap.emplace(id, static_cast<node>(remap.size()));
        } else if (token == "edge") {
            require(parser.next(token) && token == "[",
                    "readGml: expected [ after edge");
            RawEdge edge;
            int depth = 1;
            while (depth > 0 && parser.next(token)) {
                if (token == "[") {
                    ++depth;
                } else if (token == "]") {
                    --depth;
                } else if (depth == 1 &&
                           (token == "source" || token == "target" ||
                            token == "weight")) {
                    const std::string key = token;
                    require(parser.next(token), "readGml: missing value");
                    if (key == "source") {
                        edge.source = std::stoll(token);
                    } else if (key == "target") {
                        edge.target = std::stoll(token);
                    } else {
                        edge.weight = std::stod(token);
                        anyWeight = true;
                    }
                }
            }
            require(edge.source >= 0 && edge.target >= 0,
                    "readGml: edge without endpoints");
            edges.push_back(edge);
        }
    }

    GraphBuilder builder(remap.size(), anyWeight);
    for (const auto& edge : edges) {
        const auto source = remap.find(edge.source);
        const auto target = remap.find(edge.target);
        require(source != remap.end() && target != remap.end(),
                "readGml: edge references undeclared node");
        builder.addEdge(source->second, target->second, edge.weight);
    }
    return builder.build();
}

} // namespace grapr::io
