#pragma once
// MappedFile — read-only whole-file access for the parallel parsers.
//
// On POSIX platforms the file is mmap()ed (MAP_PRIVATE, PROT_READ, with a
// sequential-access advice), so parsing threads fault pages in on demand
// and the kernel's readahead streams the file — no copy into user space.
// On non-POSIX platforms, or when the environment variable
// GRAPR_IO_NO_MMAP=1 is set (also used by the tests to exercise the
// fallback), the file is read() into one heap buffer instead; either way
// the parser sees a single contiguous [data, data+size) byte range.

#include <cstddef>
#include <string>
#include <vector>

namespace grapr::io {

class MappedFile {
public:
    /// Map (or read) `path`. Throws IoError when the file cannot be
    /// opened or read.
    explicit MappedFile(const std::string& path);

    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    ~MappedFile();

    const char* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }

    /// True when the contents are an actual mmap (false: heap fallback).
    bool usedMmap() const noexcept { return mapped_; }

private:
    void reset() noexcept;

    const char* data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
    std::vector<char> fallback_; // owns the bytes when !mapped_
};

} // namespace grapr::io
