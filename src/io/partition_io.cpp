#include "io/partition_io.hpp"

#include <fstream>

namespace grapr::io {

void writePartition(const Partition& zeta, const std::string& path) {
    std::ofstream out(path);
    if (!out) fail("writePartition: cannot open " + path);
    for (node v = 0; v < zeta.numberOfElements(); ++v) {
        if (zeta[v] == none) {
            out << "-1\n";
        } else {
            out << zeta[v] << '\n';
        }
    }
    if (!out) fail("writePartition: write error on " + path);
}

Partition readPartition(const std::string& path) {
    std::ifstream in(path);
    if (!in) fail("readPartition: cannot open " + path);
    std::vector<node> ids;
    long long value;
    node maxId = 0;
    while (in >> value) {
        if (value < 0) {
            ids.push_back(none);
        } else {
            const node c = static_cast<node>(value);
            ids.push_back(c);
            maxId = std::max(maxId, c);
        }
    }
    Partition zeta(ids.size());
    for (node v = 0; v < ids.size(); ++v) zeta.set(v, ids[v]);
    zeta.setUpperBound(ids.empty() ? 0 : maxId + 1);
    return zeta;
}

} // namespace grapr::io
