#include "io/binary_csr.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GRAPR_HAVE_POSIX_SYNC 1
#endif

#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "support/checksum.hpp"
#include "support/common.hpp"
#include "support/fault.hpp"

namespace grapr::io {

namespace {

constexpr char kMagic[4] = {'G', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 40;

static_assert(sizeof(index) == 8, "GCSR stores offsets as u64");
static_assert(sizeof(node) == 4, "GCSR stores neighbors as u32");
static_assert(sizeof(edgeweight) == 8, "GCSR stores weights as f64");

struct FileCloser {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void putU32(unsigned char* dst, std::uint32_t v) {
    std::memcpy(dst, &v, sizeof v);
}
void putU64(unsigned char* dst, std::uint64_t v) {
    std::memcpy(dst, &v, sizeof v);
}
std::uint32_t getU32(const unsigned char* src) {
    std::uint32_t v = 0;
    std::memcpy(&v, src, sizeof v);
    return v;
}
std::uint64_t getU64(const unsigned char* src) {
    std::uint64_t v = 0;
    std::memcpy(&v, src, sizeof v);
    return v;
}

/// fwrite wrapper that keeps a running CRC and the byte offset for error
/// reports. Short writes surface as IoError at the exact offset.
class CrcFileWriter {
public:
    CrcFileWriter(std::FILE* file, std::string path)
        : file_(file), path_(std::move(path)) {}

    void write(const void* data, std::size_t bytes) {
        writeRaw(data, bytes);
        crc_ = crc32(data, bytes, crc_);
    }

    void writeRaw(const void* data, std::size_t bytes) {
        if (bytes == 0) return;
        GRAPR_FAULT_POINT("checkpoint.write");
        if (std::fwrite(data, 1, bytes, file_) != bytes) {
            throw IoError(path_, 0, written_,
                          "short write (disk full?)");
        }
        written_ += bytes;
    }

    std::uint32_t crc() const noexcept { return crc_; }
    count written() const noexcept { return written_; }

private:
    std::FILE* file_;
    std::string path_;
    std::uint32_t crc_ = 0;
    count written_ = 0;
};

void syncFile(std::FILE* file, const std::string& path, count offset) {
    GRAPR_FAULT_POINT("checkpoint.fsync");
#ifdef GRAPR_HAVE_POSIX_SYNC
    if (::fsync(::fileno(file)) != 0) {
        throw IoError(path, 0, offset, "fsync failed");
    }
#else
    (void)file;
    (void)path;
    (void)offset;
#endif
}

/// fsync the directory containing `path` so the rename itself is
/// durable. Open failure is tolerated (not every filesystem allows
/// opening directories); an fsync error on an open handle is not.
void syncDirectoryOf(const std::string& path) {
    GRAPR_FAULT_POINT("checkpoint.dirsync");
#ifdef GRAPR_HAVE_POSIX_SYNC
    const std::size_t slash = path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty()) dir = "/";
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return;
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        throw IoError(dir, 0, 0, "directory fsync failed");
    }
#else
    (void)path;
#endif
}

} // namespace

void writeBinaryCsr(const CsrGraph& g, std::uint64_t generation,
                    const std::string& path) {
    const std::vector<index>& offsets = g.offsets();
    const std::vector<node>& neighbors = g.neighborArray();
    const std::vector<edgeweight>& weights = g.weightArray();
    const std::uint64_t bound = g.upperNodeIdBound();
    const std::uint64_t halfEdges = offsets.back();
    const bool weighted = g.isWeighted();
    require(!weighted || weights.size() == neighbors.size(),
            "writeBinaryCsr: weighted graph with mismatched weight array");

    const std::string tmp = path + ".tmp";
    GRAPR_FAULT_POINT("checkpoint.open");
    FilePtr file(std::fopen(tmp.c_str(), "wb"));
    if (!file) {
        throw IoError(tmp, 0, 0, "writeBinaryCsr: cannot open for writing");
    }
    try {
        unsigned char header[kHeaderBytes] = {};
        std::memcpy(header, kMagic, 4);
        putU32(header + 4, kVersion);
        putU64(header + 8, generation);
        putU64(header + 16, bound);
        putU64(header + 24, halfEdges);
        header[32] = weighted ? 1 : 0;

        CrcFileWriter out(file.get(), tmp);
        out.write(header, kHeaderBytes);
        out.write(offsets.data(), offsets.size() * sizeof(index));
        out.write(neighbors.data(), neighbors.size() * sizeof(node));
        if (neighbors.size() % 2 != 0) {
            const std::uint32_t zero = 0; // 8-align the weights array
            out.write(&zero, sizeof zero);
        }
        if (weighted) {
            out.write(weights.data(), weights.size() * sizeof(edgeweight));
        }
        unsigned char trailer[4];
        putU32(trailer, out.crc());
        out.writeRaw(trailer, sizeof trailer);

        if (std::fflush(file.get()) != 0) {
            throw IoError(tmp, 0, out.written(), "flush failed");
        }
        syncFile(file.get(), tmp, out.written());
        file.reset(); // close before rename
        GRAPR_FAULT_POINT("checkpoint.rename");
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            throw IoError(path, 0, 0, "rename from temp file failed");
        }
        syncDirectoryOf(path);
    } catch (...) {
        file.reset();
        std::remove(tmp.c_str()); // best-effort; the original error wins
        throw;
    }
}

BinaryCsrSnapshot readBinaryCsr(const std::string& path) {
    MappedFile file(path);
    const auto* bytes = reinterpret_cast<const unsigned char*>(file.data());
    const std::size_t size = file.size();
    if (size < kHeaderBytes + 4) {
        throw IoError(path, 0, size,
                      "not a GCSR checkpoint (file too small)");
    }
    if (std::memcmp(bytes, kMagic, 4) != 0) {
        throw IoError(path, 0, 0, "not a GCSR checkpoint (bad magic)");
    }
    const std::uint32_t version = getU32(bytes + 4);
    if (version != kVersion) {
        throw IoError(path, 0, 4,
                      "unsupported GCSR version " + std::to_string(version));
    }
    const std::uint64_t generation = getU64(bytes + 8);
    const std::uint64_t bound = getU64(bytes + 16);
    const std::uint64_t halfEdges = getU64(bytes + 24);
    const bool weighted = bytes[32] != 0;

    // Overflow-safe size check: each array is bounded by the file itself.
    if (bound > size / sizeof(index) || halfEdges > size / sizeof(node)) {
        throw IoError(path, 0, 16, "GCSR header sizes exceed the file");
    }
    const std::uint64_t pad = halfEdges % 2 != 0 ? 4 : 0;
    const std::uint64_t expected =
        kHeaderBytes + (bound + 1) * sizeof(index) +
        halfEdges * sizeof(node) + pad +
        (weighted ? halfEdges * sizeof(edgeweight) : 0) + 4;
    if (expected != size) {
        throw IoError(path, 0, size,
                      "truncated or oversized GCSR checkpoint (expected " +
                          std::to_string(expected) + " bytes)");
    }
    const std::uint32_t stored = getU32(bytes + size - 4);
    if (crc32(bytes, size - 4) != stored) {
        throw IoError(path, 0, size - 4, "GCSR checksum mismatch");
    }

    std::vector<index> offsets(bound + 1);
    std::memcpy(offsets.data(), bytes + kHeaderBytes,
                offsets.size() * sizeof(index));
    if (offsets[0] != 0 || offsets[bound] != halfEdges) {
        throw IoError(path, 0, kHeaderBytes, "GCSR offsets are inconsistent");
    }
    for (std::uint64_t v = 0; v < bound; ++v) {
        if (offsets[v] > offsets[v + 1]) {
            throw IoError(path, 0, kHeaderBytes,
                          "GCSR offsets are not monotonic");
        }
    }

    const unsigned char* neighborBytes =
        bytes + kHeaderBytes + offsets.size() * sizeof(index);
    std::vector<node> neighbors(halfEdges);
    std::memcpy(neighbors.data(), neighborBytes,
                neighbors.size() * sizeof(node));
    for (const node v : neighbors) {
        if (v >= bound) {
            throw IoError(path, 0, 0,
                          "GCSR neighbor id out of range (corrupt file?)");
        }
    }

    std::vector<edgeweight> weights;
    if (weighted) {
        const unsigned char* weightBytes =
            neighborBytes + neighbors.size() * sizeof(node) + pad;
        weights.resize(halfEdges);
        std::memcpy(weights.data(), weightBytes,
                    weights.size() * sizeof(edgeweight));
    }

    BinaryCsrSnapshot snapshot;
    snapshot.generation = generation;
    snapshot.graph = CsrGraph(std::move(offsets), std::move(neighbors),
                              std::move(weights), weighted);
    return snapshot;
}

} // namespace grapr::io
