#pragma once
// Graph coarsening according to a partition (§III-B): the nodes of each
// community collapse into one coarse node; an edge between coarse nodes
// carries the summed weight of inter-community edges, a self-loop the
// summed weight of intra-community edges.
//
// Two strategies, selectable for the ablation bench:
//  * Sequential: one hash-aggregation sweep over the edges. The "major
//    sequential bottleneck" of early PLM versions.
//  * Parallel (the paper's scheme): each thread scans a slice of the nodes
//    and aggregates its edges into a thread-private partial coarse graph;
//    the partial adjacencies are then merged per coarse node in parallel.

#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

struct CoarseningResult {
    Graph coarseGraph{0, true};
    /// π: fine node id -> coarse node id.
    std::vector<node> fineToCoarse;
};

/// Result of coarsening a frozen graph: the coarse graph is built directly
/// in CSR form (prefix sums over per-coarse-node degrees, no intermediate
/// mutable Graph), so a multi-level algorithm stays in the frozen layout
/// across all levels and converts back only at its API boundary.
struct CsrCoarseningResult {
    CsrGraph coarseGraph;
    /// π: fine node id -> coarse node id.
    std::vector<node> fineToCoarse;
};

class ParallelPartitionCoarsening {
public:
    explicit ParallelPartitionCoarsening(bool parallel = true)
        : parallel_(parallel) {}

    /// Coarsen g according to zeta. zeta need not be compacted; community
    /// ids are compacted into coarse node ids (ascending-id order, so the
    /// result is deterministic regardless of thread count).
    CoarseningResult run(const Graph& g, const Partition& zeta) const;

    /// CSR fast path: coarsen a frozen graph into a frozen (weighted)
    /// coarse graph. Fine nodes are bucketed by coarse id with a counting
    /// sort (prefix sums), then one thread per coarse node aggregates its
    /// members' neighborhoods in a scratch accumulator; coarse adjacency
    /// rows are written straight into the CSR arrays through a second
    /// prefix sum over the row lengths. Rows come out sorted by neighbor
    /// id, so the coarse graph is canonical and deterministic for a fixed
    /// partition regardless of thread count.
    CsrCoarseningResult run(const CsrGraph& g, const Partition& zeta) const;

private:
    bool parallel_;

    CoarseningResult runSequential(const Graph& g,
                                   const std::vector<node>& fineToCoarse,
                                   count coarseNodes) const;
    CoarseningResult runParallel(const Graph& g,
                                 const std::vector<node>& fineToCoarse,
                                 count coarseNodes) const;
};

} // namespace grapr
