#include "coarsening/projector.hpp"

#include "support/common.hpp"

namespace grapr {

Partition ClusteringProjector::projectBack(
    const Partition& coarseSolution, const std::vector<node>& fineToCoarse) {
    Partition fine(fineToCoarse.size());
    const auto n = static_cast<std::int64_t>(fineToCoarse.size());
#pragma omp parallel for default(none)                                       \
    shared(fine, coarseSolution, fineToCoarse, n) schedule(static)
    for (std::int64_t v = 0; v < n; ++v) {
        const node coarse = fineToCoarse[static_cast<std::size_t>(v)];
        if (coarse != none) {
            // grapr:lint-allow(benign-race): not a published label — each
            // fine node is written exactly once and `fine` is not read
            // until the region ends.
            fine.set(static_cast<node>(v), coarseSolution[coarse]);
        }
    }
    fine.setUpperBound(coarseSolution.upperBound());
    return fine;
}

Partition ClusteringProjector::projectThroughHierarchy(
    const Partition& coarsestSolution,
    const std::vector<std::vector<node>>& maps) {
    Partition solution = coarsestSolution;
    for (auto it = maps.rbegin(); it != maps.rend(); ++it) {
        solution = projectBack(solution, *it);
    }
    return solution;
}

} // namespace grapr
