#include "coarsening/parallel_coarsening.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include <omp.h>

#include "graph/graph_builder.hpp"
#include "support/parallel.hpp"

namespace grapr {

namespace {

/// Deterministic compaction: coarse ids ordered by ascending community id.
/// Generic over the graph layout (mutable adjacency lists or frozen CSR).
template <typename GraphT>
std::pair<std::vector<node>, count> compactMap(const GraphT& g,
                                               const Partition& zeta) {
    const count idBound = zeta.upperBound();
    require(idBound > 0, "coarsening: partition upper bound is zero");
    std::vector<std::uint8_t> used(idBound, 0);
    g.forNodes([&](node v) {
        const node c = zeta[v];
        require(c != none && c < idBound, "coarsening: node unassigned");
        used[c] = 1;
    });
    std::vector<node> remap(idBound, none);
    node next = 0;
    for (count c = 0; c < idBound; ++c) {
        if (used[c]) remap[c] = next++;
    }
    std::vector<node> fineToCoarse(g.upperNodeIdBound(), none);
    g.parallelForNodes([&](node v) { fineToCoarse[v] = remap[zeta[v]]; });
    return {std::move(fineToCoarse), next};
}

} // namespace

CoarseningResult ParallelPartitionCoarsening::run(const Graph& g,
                                                  const Partition& zeta) const {
    auto [fineToCoarse, coarseNodes] = compactMap(g, zeta);
    return parallel_ ? runParallel(g, fineToCoarse, coarseNodes)
                     : runSequential(g, fineToCoarse, coarseNodes);
}

CoarseningResult ParallelPartitionCoarsening::runSequential(
    const Graph& g, const std::vector<node>& fineToCoarse,
    count coarseNodes) const {
    // One hash aggregation over all edges — the pre-parallelization scheme
    // kept for the ablation study.
    std::unordered_map<std::uint64_t, double> agg;
    agg.reserve(g.numberOfEdges() / 4 + 16);
    g.forEdges([&](node u, node v, edgeweight w) {
        node cu = fineToCoarse[u];
        node cv = fineToCoarse[v];
        if (cu > cv) std::swap(cu, cv);
        agg[(static_cast<std::uint64_t>(cu) << 32) | cv] += w;
    });

    CoarseningResult result;
    result.coarseGraph = Graph(coarseNodes, true);
    for (const auto& [key, w] : agg) {
        const auto cu = static_cast<node>(key >> 32);
        const auto cv = static_cast<node>(key & 0xffffffffULL);
        result.coarseGraph.addEdge(cu, cv, w);
    }
    result.fineToCoarse = fineToCoarse;
    return result;
}

CoarseningResult ParallelPartitionCoarsening::runParallel(
    const Graph& g, const std::vector<node>& fineToCoarse,
    count coarseNodes) const {
    // Phase 1 (paper §III-B): each thread scans a slice of the fine edges
    // and aggregates them in a thread-private hash map — its partial coarse
    // graph G'_t.
    const int threads = omp_get_max_threads();
    std::vector<std::unordered_map<std::uint64_t, double>> partial(
        static_cast<std::size_t>(threads));

    const auto bound = static_cast<std::int64_t>(g.upperNodeIdBound());
#pragma omp parallel default(none) shared(g, partial, fineToCoarse, bound)
    {
        auto& local = partial[static_cast<std::size_t>(omp_get_thread_num())];
        local.reserve(1024);
#pragma omp for schedule(guided)
        for (std::int64_t su = 0; su < bound; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u)) continue;
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v < u) return; // each fine edge from one endpoint only
                node cu = fineToCoarse[u];
                node cv = fineToCoarse[v];
                if (cu > cv) std::swap(cu, cv);
                local[(static_cast<std::uint64_t>(cu) << 32) | cv] += w;
            });
        }
    }

    // Phase 2: merge the partial graphs. Emitting each partial adjacency as
    // an edge triple and letting GraphBuilder deduplicate with weight
    // summation performs exactly the per-coarse-node merge, with the
    // scatter phase parallel.
    GraphBuilder builder(coarseNodes, true);
    // Worksharing over the partial maps, NOT one map per team member: the
    // num_threads clause the old code relied on is only a request — with
    // dynamic thread adjustment a smaller team would silently skip the
    // unvisited partial maps, dropping coarse edges.
    const auto nparts = static_cast<std::int64_t>(partial.size());
#pragma omp parallel for default(none) shared(builder, partial, nparts)      \
    schedule(static)
    for (std::int64_t t = 0; t < nparts; ++t) {
        const auto& local = partial[static_cast<std::size_t>(t)];
        for (const auto& [key, w] : local) {
            builder.addEdge(static_cast<node>(key >> 32),
                            static_cast<node>(key & 0xffffffffULL), w);
        }
    }

    CoarseningResult result;
    result.coarseGraph = builder.build(/*dedup=*/true, /*sumWeights=*/true);
    result.fineToCoarse = fineToCoarse;
    return result;
}

CsrCoarseningResult ParallelPartitionCoarsening::run(
    const CsrGraph& g, const Partition& zeta) const {
    auto [fineToCoarse, coarseNodes] = compactMap(g, zeta);

    // Bucket the fine nodes by coarse id: counting sort with a prefix sum
    // over the community sizes, then a parallel scatter. Buckets are
    // sorted ascending afterwards so the aggregation order below — and
    // with it the coarse graph — is independent of the thread count.
    std::vector<count> rowStart(coarseNodes, 0);
    g.parallelForNodes([&](node v) {
#pragma omp atomic
        ++rowStart[fineToCoarse[v]];
    });
    const count memberCount = Parallel::prefixSum(rowStart);
    std::vector<node> members(memberCount);
    {
        std::vector<std::atomic<count>> cursor(coarseNodes);
        for (count c = 0; c < coarseNodes; ++c) {
            cursor[c].store(rowStart[c], std::memory_order_relaxed);
        }
        g.parallelForNodes([&](node v) {
            const count slot = cursor[fineToCoarse[v]].fetch_add(
                1, std::memory_order_relaxed);
            members[slot] = v;
        });
    }
    auto bucketEnd = [&](count c) {
        return c + 1 < coarseNodes ? rowStart[c + 1] : memberCount;
    };
    const auto scn = static_cast<std::int64_t>(coarseNodes);
#pragma omp parallel for default(none)                                       \
    shared(members, rowStart, bucketEnd, scn) schedule(guided) if (parallel_)
    for (std::int64_t c = 0; c < scn; ++c) {
        const auto cc = static_cast<count>(c);
        std::sort(members.begin() + static_cast<std::ptrdiff_t>(rowStart[cc]),
                  members.begin() + static_cast<std::ptrdiff_t>(bucketEnd(cc)));
    }

    // One aggregation per coarse node: scan the members' fine rows into a
    // scratch accumulator keyed by coarse neighbor id. Intra-community
    // edges land on the coarse self-loop; the `v < u` guard counts each
    // one from a single endpoint (fine self-loops pass, stored once).
    ScratchPool scratch(coarseNodes);
    auto aggregate = [&](count c, SparseAccumulator& acc) {
        acc.clear();
        const count end = bucketEnd(c);
        for (count i = rowStart[c]; i < end; ++i) {
            const node u = members[i];
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                const node cv = fineToCoarse[v];
                if (cv == c && v < u) return;
                acc.add(cv, w);
            });
        }
    };

    // Pass 1: coarse row lengths -> prefix sum -> CSR offsets.
    std::vector<count> rowLength(coarseNodes, 0);
#pragma omp parallel for default(none)                                       \
    shared(scratch, aggregate, rowLength, scn) schedule(guided)              \
        if (parallel_)
    for (std::int64_t c = 0; c < scn; ++c) {
        SparseAccumulator& acc = scratch.local();
        aggregate(static_cast<count>(c), acc);
        rowLength[static_cast<count>(c)] =
            static_cast<count>(acc.touched().size());
    }
    const count entries = Parallel::prefixSum(rowLength);
    std::vector<index> offsets(coarseNodes + 1);
    for (count c = 0; c < coarseNodes; ++c) {
        offsets[c] = static_cast<index>(rowLength[c]);
    }
    offsets[coarseNodes] = static_cast<index>(entries);

    // Pass 2: re-aggregate and write each row, sorted by coarse neighbor
    // id, directly into its CSR slice.
    std::vector<node> neighbors(entries);
    std::vector<edgeweight> weights(entries);
#pragma omp parallel for default(none)                                       \
    shared(scratch, aggregate, offsets, neighbors, weights, scn)             \
    schedule(guided) if (parallel_)
    for (std::int64_t c = 0; c < scn; ++c) {
        const auto cc = static_cast<count>(c);
        SparseAccumulator& acc = scratch.local();
        aggregate(cc, acc);
        std::vector<index> row(acc.touched());
        std::sort(row.begin(), row.end());
        index slot = offsets[cc];
        for (index key : row) {
            neighbors[slot] = static_cast<node>(key);
            weights[slot] = acc[key];
            ++slot;
        }
    }

    CsrCoarseningResult result;
    result.coarseGraph = CsrGraph(std::move(offsets), std::move(neighbors),
                                  std::move(weights), /*weighted=*/true);
    result.fineToCoarse = std::move(fineToCoarse);
    return result;
}

} // namespace grapr
