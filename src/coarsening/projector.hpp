#pragma once
// Prolongation (§III-B "prolong"): map a solution computed on a coarse
// graph back to the fine graph through the fine-to-coarse node map, and
// through whole hierarchies of such maps.

#include <vector>

#include "structures/partition.hpp"

namespace grapr {

class ClusteringProjector {
public:
    /// ζ(v) = ζ'(π(v)): communities of the coarse solution assigned to the
    /// fine nodes. fineToCoarse entries of `none` (removed fine nodes) stay
    /// unassigned.
    static Partition projectBack(const Partition& coarseSolution,
                                 const std::vector<node>& fineToCoarse);

    /// Project through a hierarchy: maps[0] is finest->next, last is
    /// ...->coarsest; the solution lives on the coarsest level.
    static Partition projectThroughHierarchy(
        const Partition& coarsestSolution,
        const std::vector<std::vector<node>>& maps);
};

} // namespace grapr
