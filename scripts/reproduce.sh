#!/bin/sh
# One-command reproduction of the paper's evaluation:
#   sh scripts/reproduce.sh [build-dir]
# Builds the project, runs the full test suite, then every benchmark
# harness (one per paper table/figure, plus ablations and micro benches).
# Instance and measurement caches land in ./data; outputs in
# test_output.txt and bench_output.txt.
set -e
BUILD=${1:-build}
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
(for b in "$BUILD"/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  fi
done) 2>&1 | tee bench_output.txt
