// Quickstart: the five-line workflow of the library — generate (or load) a
// graph, run the recommended algorithm (PLM, per the paper's conclusion),
// and inspect the solution.
//
//   build/examples/example_quickstart [edge-list-file]
//
// Without an argument a synthetic social-network-like graph is generated;
// with one, the given whitespace-separated edge list is analyzed instead.

#include <cstdio>

#include "grapr.hpp"

using namespace grapr;

int main(int argc, char** argv) {
    Random::setSeed(42);

    // 1. Obtain a graph.
    Graph g = [&] {
        if (argc > 1) {
            std::printf("loading %s ...\n", argv[1]);
            return io::readEdgeList(argv[1]);
        }
        std::printf("generating an LFR benchmark graph "
                    "(10k nodes, planted communities) ...\n");
        LfrParameters params;
        params.n = 10000;
        params.mu = 0.3;
        return LfrGenerator(params).generate();
    }();
    std::printf("graph: n=%llu m=%llu\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    // 2. Detect communities with the parallel Louvain method.
    Plm plm;
    Timer timer;
    Partition communities = plm.run(g);
    const double seconds = timer.elapsed();

    // 3. Inspect the solution.
    const double quality = Modularity().getQuality(communities, g);
    const CommunitySizeStats stats = communitySizeStats(communities);
    std::printf("PLM found %llu communities in %s\n",
                static_cast<unsigned long long>(stats.communities),
                formatDuration(seconds).c_str());
    std::printf("modularity: %.4f   sizes: min=%llu median=%.0f max=%llu\n",
                quality, static_cast<unsigned long long>(stats.smallest),
                stats.median, static_cast<unsigned long long>(stats.largest));

    // 4. Persist for downstream tooling (one community id per node line).
    io::writePartition(communities, "communities.txt");
    std::printf("solution written to communities.txt\n");
    return 0;
}
