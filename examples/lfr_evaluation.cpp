// LFR ground-truth evaluation — how to validate a community detection
// algorithm the way the paper does in §V-G: generate LFR benchmark graphs
// of increasing mixing, run detectors, and measure agreement with the
// planted ground truth by three similarity indices (Jaccard, Rand, NMI).
// A compact, self-contained version of the Figure-8 experiment that is
// also the template for evaluating *new* algorithms added to the
// framework.

#include <cstdio>

#include "grapr.hpp"

using namespace grapr;

int main() {
    Random::setSeed(21);

    std::printf("LFR evaluation: n=5000, deg 8..50, communities 20..100\n\n");
    std::printf("%-6s %-8s %10s %10s %10s %12s\n", "mu", "algo", "Jaccard",
                "Rand", "NMI", "modularity");

    for (double mu : {0.2, 0.5, 0.8}) {
        LfrParameters params;
        params.n = 5000;
        params.minDegree = 8;
        params.maxDegree = 50;
        params.minCommunitySize = 20;
        params.maxCommunitySize = 100;
        params.mu = mu;
        LfrGenerator generator(params);
        const Graph g = generator.generate();
        const Partition& truth = generator.groundTruth();

        for (const char* name : {"PLP", "PLM"}) {
            auto detector = makeDetector(name);
            const Partition zeta = detector->run(g);
            std::printf("%-6.1f %-8s %10.3f %10.3f %10.3f %12.4f\n", mu,
                        name, jaccardIndex(zeta, truth),
                        randIndex(zeta, truth),
                        normalizedMutualInformation(zeta, truth),
                        Modularity().getQuality(zeta, g));
        }
        // Reference point: the ground truth's own modularity.
        std::printf("%-6.1f %-8s %10.3f %10.3f %10.3f %12.4f\n\n", mu,
                    "truth", 1.0, 1.0, 1.0,
                    Modularity().getQuality(truth, g));
    }

    std::printf("reading the table: Jaccard/Rand/NMI of 1.0 = exact recovery"
                "\nof the planted communities; PLM should track the truth to"
                "\nhigher mu than PLP (the paper's Figure 8).\n");
    return 0;
}
