// Dynamic network stream — the paper's future-work scenario (its funding
// project: "Parallel Analysis of Dynamic Networks"): maintain communities
// over a stream of edge insertions/deletions instead of re-solving from
// scratch after every change.
//
// The example builds a planted-community graph, lets communities drift by
// rewiring edges in batches, and compares the incrementally maintained
// solution (DynamicPlp) against periodic from-scratch recomputation — in
// both quality and the number of nodes each approach touches.

#include <cstdio>

#include "grapr.hpp"

using namespace grapr;

int main() {
    Random::setSeed(31);

    PlantedPartitionGenerator generator(20000, 100, 0.15, 0.0005);
    Graph g = generator.generate();
    std::printf("initial graph: n=%llu m=%llu\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    DynamicPlp dynamic;
    dynamic.run(g);
    dynamic.autoUpdate(false); // batch per round

    const Modularity modularity;
    std::printf("initial: %llu communities, modularity %.4f\n\n",
                static_cast<unsigned long long>(
                    dynamic.communities().numberOfSubsets()),
                modularity.getQuality(dynamic.communities(), g));

    std::printf("%-8s %10s %12s %12s %14s %14s\n", "round", "changes",
                "q(dynamic)", "q(scratch)", "work(dynamic)", "work(scratch)");

    const int rounds = 8;
    const int changesPerRound = 2000;
    for (int round = 1; round <= rounds; ++round) {
        // Random rewiring batch: deletions and insertions mixed.
        int applied = 0;
        while (applied < changesPerRound) {
            const node u = static_cast<node>(
                Random::integer(g.upperNodeIdBound()));
            const node v = static_cast<node>(
                Random::integer(g.upperNodeIdBound()));
            if (u == v) continue;
            if (g.hasEdge(u, v)) {
                g.removeEdge(u, v);
                dynamic.onEdgeRemove(g, u, v);
            } else {
                g.addEdge(u, v);
                dynamic.onEdgeInsert(g, u, v);
            }
            ++applied;
        }

        Timer incrementalTimer;
        dynamic.update(g);
        const double incrementalSeconds = incrementalTimer.elapsed();

        Timer scratchTimer;
        Plp scratch;
        const Partition fromScratch = scratch.run(g);
        const double scratchSeconds = scratchTimer.elapsed();

        std::printf("%-8d %10d %12.4f %12.4f %11llu nd %11llu nd   "
                    "(%s vs %s)\n",
                    round, applied,
                    modularity.getQuality(dynamic.communities(), g),
                    modularity.getQuality(fromScratch, g),
                    static_cast<unsigned long long>(dynamic.lastUpdateWork()),
                    static_cast<unsigned long long>(g.numberOfNodes()),
                    formatDuration(incrementalSeconds).c_str(),
                    formatDuration(scratchSeconds).c_str());
    }

    std::printf("\nthe dynamic detector re-evaluates only the perturbed\n"
                "region per round while tracking from-scratch quality.\n");
    return 0;
}
