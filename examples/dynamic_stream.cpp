// Dynamic network stream — the paper's future-work scenario (its funding
// project: "Parallel Analysis of Dynamic Networks"): maintain communities
// over a stream of edge insertions/deletions instead of re-solving from
// scratch after every change.
//
// This is the driving scenario of the streaming engine (DESIGN.md
// "Streaming updates and snapshot isolation"):
//
//   1. a StreamingGraph freezes the network as immutable generation 0;
//   2. a writer submits rewiring batches through a GraphLog — each commit
//      assembles generation N+1 from the delta while readers keep serving
//      generation N, then publishes it with one pointer swap;
//   3. a StreamingPlm re-detects after every batch, seeded from the
//      previous partition and re-activating only the perturbed region;
//   4. an analyst thread pins an old generation and keeps reading it,
//      unaffected by any number of publishes;
//   5. the GraphLog undo stack unwinds the stream batch by batch, ending
//      bit-identical to where it started.
//
// Quality is compared against from-scratch PLM on every post-batch
// snapshot; the point is that the incremental result tracks it while
// evaluating a small fraction of the nodes.

#include <cstdio>

#include "grapr.hpp"

using namespace grapr;

int main() {
    Random::setSeed(31);

    PlantedPartitionGenerator generator(20000, 100, 0.15, 0.0005);
    const Graph initial = generator.generate();

    // Generation 0: freeze the network. Readers and detectors only ever
    // see immutable snapshots from here on.
    StreamingGraph engine(initial);
    GraphLog log(engine);

    const SnapshotPtr genesis = engine.pin(); // the analyst's snapshot
    std::printf("generation 0: n=%llu m=%llu\n",
                static_cast<unsigned long long>(
                    genesis->graph.numberOfNodes()),
                static_cast<unsigned long long>(
                    genesis->graph.numberOfEdges()));

    StreamingPlm incremental;
    incremental.initialize(genesis->graph);

    const Modularity modularity;
    std::printf("initial: %llu communities, modularity %.4f\n\n",
                static_cast<unsigned long long>(
                    incremental.communities().numberOfSubsets()),
                modularity.getQuality(incremental.communities(),
                                      genesis->graph));

    std::printf("%-6s %8s %12s %12s %12s %14s %14s\n", "batch", "net ops",
                "q(incr)", "q(scratch)", "reactivated", "t(incr)",
                "t(scratch)");

    const int rounds = 8;
    const int changesPerRound = 2000;
    SplitMix64 rng = Random::forStream(31);
    for (int round = 1; round <= rounds; ++round) {
        // Build one rewiring batch against the current snapshot: drop
        // present edges, create absent ones (communities drift).
        const SnapshotPtr base = engine.pin();
        const count bound = base->graph.upperNodeIdBound();
        int staged = 0;
        while (staged < changesPerRound) {
            const node u = static_cast<node>(Random::integer(rng, bound));
            const node v = static_cast<node>(Random::integer(rng, bound));
            if (u == v) continue;
            if (csrEdgeWeight(base->graph, u, v).has_value()) {
                log.remove(u, v);
            } else {
                log.insert(u, v);
            }
            ++staged;
        }

        // Atomic publish: generation N+1 is assembled in parallel from
        // the delta while `base` (and the analyst's `genesis`) still
        // serve reads, then swapped in. Permissive mode: the random
        // rewiring may stage the same edge twice.
        const BatchResult result = log.commit(StreamApplyMode::Permissive);
        const SnapshotPtr after = engine.pin();

        Timer incrementalTimer;
        incremental.applyBatch(after->graph, result.touched);
        const double incrementalSeconds = incrementalTimer.elapsed();

        Timer scratchTimer;
        const Partition fromScratch = Plm().runFrozen(after->graph);
        const double scratchSeconds = scratchTimer.elapsed();

        const double reactivatedPct =
            100.0 * static_cast<double>(incremental.lastReactivated()) /
            static_cast<double>(after->graph.upperNodeIdBound());
        std::printf("%-6d %8llu %12.4f %12.4f %10.1f %% %14s %14s\n", round,
                    static_cast<unsigned long long>(result.inserted +
                                                    result.removed),
                    modularity.getQuality(incremental.communities(),
                                          after->graph),
                    modularity.getQuality(fromScratch, after->graph),
                    reactivatedPct,
                    formatDuration(incrementalSeconds).c_str(),
                    formatDuration(scratchSeconds).c_str());
    }

    // The analyst's pinned snapshot never moved: generation 0 is still
    // fully readable after eight publishes.
    std::printf("\nanalyst still reads generation %llu: m=%llu "
                "(unchanged across %llu publishes)\n",
                static_cast<unsigned long long>(genesis->generation),
                static_cast<unsigned long long>(
                    genesis->graph.numberOfEdges()),
                static_cast<unsigned long long>(engine.generation()));

    // Unwind the whole stream: the undo stack replays each inverse batch,
    // and the final CSR arrays are bit-identical to generation 0 (the
    // round-trip property tests/test_stream_engine.cpp pins).
    while (log.committedBatches() > 0) log.undo();
    const SnapshotPtr rewound = engine.pin();
    std::printf("after undo of all batches: m=%llu (generation %llu)\n",
                static_cast<unsigned long long>(
                    rewound->graph.numberOfEdges()),
                static_cast<unsigned long long>(rewound->generation));

    std::printf("\nthe streaming engine republishes one frozen snapshot\n"
                "per batch; incremental PLM tracks from-scratch quality\n"
                "while re-activating only the perturbed region.\n");
    return 0;
}
