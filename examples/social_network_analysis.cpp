// Social network analysis — the paper's motivating scenario: an analyst at
// a multicore workstation, interactively exploring the community structure
// of a social graph. This example walks the full workflow:
//
//  1. build a synthetic social network (preferential attachment — the
//     degree structure of real friendship/follower graphs),
//  2. profile it (the Table-I statistics),
//  3. compare the speed/quality menu of the paper's recommended
//     algorithms (PLP for speed, PLM/PLMR for quality, EPP in between),
//  4. drill into the communities of the best solution,
//  5. export a community graph for visualization (Figure-11 style).

#include <cstdio>

#include "grapr.hpp"

using namespace grapr;

int main() {
    Random::setSeed(7);

    std::printf("=== 1. build a social network ===\n");
    const count n = 50000;
    Graph g = BarabasiAlbertGenerator(n, 6).generate();
    std::printf("preferential-attachment graph: n=%llu m=%llu\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    std::printf("\n=== 2. structural profile ===\n");
    const GraphProfile profile = profileGraph(g);
    std::printf("max degree %llu (hub), %llu component(s), avg LCC %.3f\n",
                static_cast<unsigned long long>(profile.maxDegree),
                static_cast<unsigned long long>(profile.components),
                profile.averageLcc);

    std::printf("\n=== 3. the speed/quality menu ===\n");
    std::printf("%-18s %12s %12s %14s\n", "algorithm", "time", "modularity",
                "#communities");
    Partition best(g.upperNodeIdBound());
    double bestQuality = -1.0;
    for (const char* name : {"PLP", "EPP(4,PLP,PLM)", "PLM", "PLMR"}) {
        auto detector = makeDetector(name);
        Timer timer;
        Partition zeta = detector->run(g);
        const double seconds = timer.elapsed();
        const double quality = Modularity().getQuality(zeta, g);
        std::printf("%-18s %12s %12.4f %14llu\n", name,
                    formatDuration(seconds).c_str(), quality,
                    static_cast<unsigned long long>(zeta.numberOfSubsets()));
        if (quality > bestQuality) {
            bestQuality = quality;
            best = std::move(zeta);
        }
    }

    std::printf("\n=== 4. community drill-down (best solution) ===\n");
    best.compact();
    const CommunitySizeStats stats = communitySizeStats(best);
    std::printf("%llu communities; sizes min=%llu median=%.0f max=%llu\n",
                static_cast<unsigned long long>(stats.communities),
                static_cast<unsigned long long>(stats.smallest), stats.median,
                static_cast<unsigned long long>(stats.largest));
    const EdgeCut cut = communityEdgeCut(best, g);
    std::printf("intra-community weight %.0f vs inter %.0f (coverage %.1f%%)\n",
                cut.intraWeight, cut.interWeight,
                100.0 * cut.intraWeight /
                    (cut.intraWeight + cut.interWeight));

    std::printf("\n=== 5. export the community graph ===\n");
    const CoarseningResult coarse = ParallelPartitionCoarsening().run(g, best);
    io::writeCommunityGraphDot(coarse.coarseGraph, best.subsetSizes(),
                               "social_communities.dot");
    std::printf("community graph (%llu nodes) -> social_communities.dot\n",
                static_cast<unsigned long long>(
                    coarse.coarseGraph.numberOfNodes()));
    std::printf("render with: neato -Tsvg social_communities.dot -o out.svg\n");
    return 0;
}
