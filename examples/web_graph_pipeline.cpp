// Web-graph batch pipeline — the paper's massive-data scenario ("networks
// with billions of edges should be processed in minutes rather than
// hours"): generate a web-scale-shaped R-MAT graph, persist it in the
// binary format, reload, detect communities with the fast path (PLP) and
// the quality path (PLM), and report the paper's headline metric:
// processed edges per second.
//
// Pass a scale exponent to size the instance (default 17 -> ~130k nodes):
//   build/examples/example_web_graph_pipeline [scale]

#include <cstdio>
#include <cstdlib>

#include "grapr.hpp"

using namespace grapr;

int main(int argc, char** argv) {
    const count scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;
    Random::setSeed(11);

    std::printf("=== generate (R-MAT scale %llu, web parameters) ===\n",
                static_cast<unsigned long long>(scale));
    Timer genTimer;
    Graph g = RmatGenerator(scale, 12, 0.60, 0.18, 0.18, 0.04).generate();
    std::printf("n=%llu m=%llu in %s\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()),
                formatDuration(genTimer.elapsed()).c_str());

    std::printf("\n=== persist + reload (binary snapshot) ===\n");
    Timer ioTimer;
    io::writeBinary(g, "webgraph.grpr");
    Graph reloaded = io::readBinary("webgraph.grpr");
    std::printf("round trip in %s (structural check: %s)\n",
                formatDuration(ioTimer.elapsed()).c_str(),
                reloaded.numberOfEdges() == g.numberOfEdges() ? "ok"
                                                              : "MISMATCH");

    std::printf("\n=== fast path: PLP ===\n");
    Plp plp;
    Timer plpTimer;
    Partition fast = plp.run(reloaded);
    const double plpSeconds = plpTimer.elapsed();
    std::printf("%.0f edges/s, modularity %.4f, %llu communities, %llu "
                "iterations\n",
                static_cast<double>(g.numberOfEdges()) / plpSeconds,
                Modularity().getQuality(fast, reloaded),
                static_cast<unsigned long long>(fast.numberOfSubsets()),
                static_cast<unsigned long long>(plp.iterations()));

    std::printf("\n=== quality path: PLM ===\n");
    Plm plm;
    Timer plmTimer;
    Partition good = plm.run(reloaded);
    const double plmSeconds = plmTimer.elapsed();
    std::printf("%.0f edges/s, modularity %.4f, %llu communities, %zu "
                "hierarchy levels\n",
                static_cast<double>(g.numberOfEdges()) / plmSeconds,
                Modularity().getQuality(good, reloaded),
                static_cast<unsigned long long>(good.numberOfSubsets()),
                plm.levels().size());

    std::printf("\n=== agreement between the two solutions ===\n");
    std::printf("Jaccard index PLP vs PLM: %.3f\n", jaccardIndex(fast, good));
    std::remove("webgraph.grpr");
    return 0;
}
